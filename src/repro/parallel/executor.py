"""Sharded execution of a recorded schedule's task DAG across P nodes.

The fixed-strategy simulator (:mod:`repro.parallel.simulate`) can only
distribute SYRK under its two built-in block layouts.  This module runs
*any* recorded schedule on ``p`` simulated nodes: extract the schedule's
:class:`~repro.graph.dependency.DependencyGraph` (whose antichain levels
are exactly the op sets a multi-node schedule may run concurrently),
partition the ops across nodes with a pluggable heuristic, and replay each
node's shard on its own counting engine with fast memory ``S``.

Per-node accounting follows the paper's §2.2 equivalence — every load of a
node's two-level replay is a *receive* from the rest of the machine, every
store a *send* — and the DAG's cross-shard cut makes the node-to-node part
of that traffic explicit: elements carried by cross-shard RAW edges (and
by split reduction classes, whose partial sums must be combined) are
reported as transfers between the producing and consuming shards
(:meth:`~repro.graph.dependency.DependencyGraph.cut_transfers`).

Partitioners (:data:`PARTITIONERS`):

``"level-greedy"``    walk the DAG's antichain levels in depth order; within
                      each level deal ops largest-first to the least-loaded
                      node (rotating ties).  Maximizes the concurrently
                      runnable work per node, ignores data placement;
``"locality"``        greedy data-affinity: assign each op (in topological
                      order) to the node already owning most of its operand
                      elements, subject to a load cap.  Minimizes the cut at
                      some cost in balance;
``"owner-computes"``  every op lands on the node that owns its *output*
                      elements (ops sharing written elements are grouped and
                      dealt as units).  Each element is written by exactly
                      one node, so no reduction class is ever split and
                      write-carrying transfers are zero by construction.

Replay policies (:data:`POLICIES`):

``"rewrite"``   dress each shard's sub-trace up as an explicit load/evict
                stream (load-on-demand, evict-by-furthest-next-use — the
                per-order optimum of :func:`repro.graph.rewriter.rewrite_trace`)
                and validate it against the model's rules, proving peak
                occupancy <= S;
``"lru"`` / ``"belady"``  count the shard's receive volume under the
                array-based cache replays of :mod:`repro.trace.replay`;
``"explicit"``  shard the *recorded* schedule's own load/evict steps
                (:func:`shard_schedule`) and replay each node's slice on a
                real counting machine — the mode that reproduces
                :func:`repro.parallel.simulate.simulate_syrk` bit for bit
                when fed the recorded block strategy.

Sub-traces are sliced from one compiled trace without recompilation
(:meth:`~repro.trace.compiled.CompiledTrace.select_ops`), so element IDs
stay comparable across shards — which is what makes the cut accounting and
the per-shard replays consistent with each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, ScheduleError
from ..graph.dependency import DependencyGraph
from ..graph.rewriter import rewrite_trace
from ..machine.machine import TwoLevelMachine
from ..machine.regions import Region
from ..obs.probe import get_probe, timed
from ..sched.schedule import ComputeStep, EvictStep, LoadStep, Schedule, Step
from ..sched.validate import validate_schedule
from ..trace.compiled import CompiledTrace, compile_trace
from ..trace.replay import belady_replay_trace, lru_replay_trace
from .makespan import MakespanResult, makespan_model
from .partition import NodeAssignment, balance_cap, deal_least_loaded
from .refine import write_groups
from .simulate import fleet_imbalance, fleet_mean

PARTITIONERS = ("level-greedy", "locality", "owner-computes")
POLICIES = ("rewrite", "lru", "belady", "explicit")


# ---------------------------------------------------------------------- #
# partitioners: DependencyGraph -> owner[op] in 0..p-1
# ---------------------------------------------------------------------- #
def _op_weights(graph: DependencyGraph) -> list[int]:
    """Work per op (mults, floored at 1 so zero-mult ops still count)."""
    return [max(int(node.op.mults), 1) for node in graph.nodes]


def _partition_levels(graph: DependencyGraph, p: int) -> list[int]:
    depth = graph.depths()
    weights = _op_weights(graph)
    levels: dict[int, list[int]] = {}
    for v, d in enumerate(depth):
        levels.setdefault(d, []).append(v)
    owner = [0] * len(graph)
    loads = [0] * p
    for d in sorted(levels):
        ops = levels[d]
        targets = deal_least_loaded([weights[v] for v in ops], p, start=d, loads=loads)
        for v, q in zip(ops, targets):
            owner[v] = q
    return owner


def _partition_locality(graph: DependencyGraph, p: int, slack: float) -> list[int]:
    weights = _op_weights(graph)
    # Exact integer cap: the float expression `slack * total / p` can round
    # below the true bound and spuriously reject exact-balance placements
    # at slack=1.0 (see balance_cap).
    cap = balance_cap(sum(weights), p, slack)
    owner = [0] * len(graph)
    loads = [0] * p
    elem_owner: dict[int, int] = {}
    for v, node in enumerate(graph.nodes):  # original order is topological
        score = [0] * p
        for key in node.touched_keys():
            q = elem_owner.get(key)
            if q is not None:
                score[q] += 1
        candidates = [q for q in range(p) if loads[q] + weights[v] <= cap]
        if not candidates:
            candidates = list(range(p))
        best = max(candidates, key=lambda q: (score[q], -loads[q], -q))
        owner[v] = best
        loads[best] += weights[v]
        for key in node.touched_keys():
            elem_owner[key] = best
    return owner


def _partition_owner_computes(graph: DependencyGraph, p: int) -> list[int]:
    # Deal whole write-groups, so every element's writers land on one node
    # (reduction classes never split; no write transfers).
    weights = _op_weights(graph)
    group_list = write_groups(graph)
    group_weights = [sum(weights[v] for v in g) for g in group_list]
    targets = deal_least_loaded(group_weights, p)
    owner = [0] * len(graph)
    for g, q in zip(group_list, targets):
        for v in g:
            owner[v] = q
    return owner


def partition_graph(
    graph: DependencyGraph,
    p: int,
    heuristic: str = "level-greedy",
    *,
    balance_slack: float = 1.2,
) -> list[int]:
    """Partition the DAG's ops across ``p`` nodes; returns ``owner[op]``."""
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    if heuristic not in PARTITIONERS:
        raise ConfigurationError(
            f"unknown partitioner {heuristic!r}; choose from {', '.join(PARTITIONERS)}"
        )
    if p == 1 or not len(graph):
        return [0] * len(graph)
    if heuristic == "level-greedy":
        return _partition_levels(graph, p)
    if heuristic == "locality":
        return _partition_locality(graph, p, balance_slack)
    return _partition_owner_computes(graph, p)


def owner_from_assignment(
    graph: DependencyGraph, assignment: NodeAssignment
) -> list[int]:
    """Map each op to the node owning its written C elements.

    The bridge between the fixed block strategies and the DAG executor: the
    :class:`~repro.parallel.partition.NodeAssignment` fixes which node owns
    each ``(i, j)`` pair of the result's lower triangle; every compute op of
    a recorded SYRK schedule writes pairs of exactly one node's share, and
    that node becomes the op's owner.  Raises if an op writes pairs of two
    different nodes (the assignment does not shard that schedule) or writes
    elements outside the assignment's matrix ``C``.
    """
    trace = graph.trace
    if trace is None:
        raise ConfigurationError("graph carries no trace; build it from one")
    try:
        ci = trace.matrices.index("C")
    except ValueError:
        raise ConfigurationError("trace addresses no matrix named 'C'") from None
    pair_node: dict[int, int] = {}
    n = assignment.n
    for node_id, blocks in enumerate(assignment.blocks):
        for block in blocks:
            for i, j in block.pairs():
                pair_node[i * n + j] = node_id
    owner = [0] * len(graph)
    for v, node in enumerate(graph.nodes):
        nodes_seen = set()
        for key in node.write_keys:
            if int(trace.key_matrix[key]) != ci:
                continue
            q = pair_node.get(int(trace.key_flat[key]))
            if q is None:
                raise ConfigurationError(
                    f"op {v} writes C element {int(trace.key_flat[key])} "
                    "not covered by the assignment"
                )
            nodes_seen.add(q)
        if len(nodes_seen) != 1:
            raise ConfigurationError(
                f"op {v} writes C elements of {len(nodes_seen)} nodes; "
                "the assignment does not shard this schedule"
            )
        owner[v] = nodes_seen.pop()
    return owner


# ---------------------------------------------------------------------- #
# explicit sharding: slice a recorded schedule's load/evict steps per node
# ---------------------------------------------------------------------- #
def shard_schedule(
    schedule: Schedule, owner: Sequence[int], p: int | None = None
) -> list[Schedule]:
    """Split a recorded schedule into one legal per-node schedule per shard.

    Each node receives exactly the traffic it uses: for every residency
    epoch of an element (original load .. matching evict), the nodes whose
    compute ops touch the element during the epoch each load it at the
    original load's position and evict it at the original evict's position
    — writing back iff the original evicted with writeback and the node
    itself wrote the element.  Steps keep their original relative order, so
    every per-node schedule is legal (loads precede uses, evicts follow
    them) and its resident set is a subset of the original's at every step:
    per-node peak occupancy can only shrink.

    Elements loaded but touched by no compute before eviction are charged
    to no node (no node needed that receive).  For schedules whose loads
    each serve a single node — e.g. the recorded block strategy of
    :func:`~repro.parallel.simulate.record_block_schedule` — the per-node
    counts partition the original counts exactly.
    """
    n_computes = sum(1 for s in schedule.steps if isinstance(s, ComputeStep))
    if len(owner) != n_computes:
        raise ConfigurationError(
            f"owner has {len(owner)} entries for {n_computes} compute steps"
        )
    if len(owner) and min(owner) < 0:
        raise ConfigurationError("owner indices must be >= 0")
    top = (max(owner) + 1) if len(owner) else 1
    if p is None:
        p = top
    elif p < top:
        raise ConfigurationError(f"owner references node {top - 1} but p = {p}")

    # live[key] = (epoch load position, users, writers); epoch_use[(pos, q)]
    # accumulates the flats node q uses from the load at original position
    # ``pos`` (one matrix per load step, recorded in epoch_matrix).
    live: dict[tuple[str, int], tuple[int, set[int], set[int]]] = {}
    epoch_use: dict[tuple[int, int], set[int]] = {}
    epoch_matrix: dict[int, str] = {}
    placed: list[list[tuple[int, int, Step]]] = [[] for _ in range(p)]
    seq = 0

    def place_evicts(
        pos: int, matrix: str, per_node: dict[int, tuple[list[int], list[int]]]
    ) -> None:
        nonlocal seq
        for q, (clean, dirty) in sorted(per_node.items()):
            for flats, wb in ((clean, False), (dirty, True)):
                if flats:
                    region = Region(matrix, np.sort(np.asarray(flats, dtype=np.int64)))
                    placed[q].append((pos, seq, EvictStep(region, wb)))
                    seq += 1

    op_index = 0
    for pos, step in enumerate(schedule.steps):
        if isinstance(step, LoadStep):
            epoch_matrix[pos] = step.region.matrix
            for flat in step.region.flat.tolist():
                key = (step.region.matrix, flat)
                if key in live:
                    raise ScheduleError(
                        f"step {pos}: redundant load of resident element {key}"
                    )
                live[key] = (pos, set(), set())
        elif isinstance(step, ComputeStep):
            q = int(owner[op_index])
            op_index += 1
            placed[q].append((pos, seq, step))
            seq += 1
            op = step.op
            for regions, writes in ((op.reads(), False), (op.writes(), True)):
                for region in regions:
                    for flat in region.flat.tolist():
                        key = (region.matrix, flat)
                        try:
                            epoch, users, writers = live[key]
                        except KeyError:
                            raise ScheduleError(
                                f"step {pos}: compute touches non-resident element {key}"
                            ) from None
                        users.add(q)
                        if writes:
                            writers.add(q)
                        epoch_use.setdefault((epoch, q), set()).add(flat)
        elif isinstance(step, EvictStep):
            per_node: dict[int, tuple[list[int], list[int]]] = {}
            for flat in step.region.flat.tolist():
                key = (step.region.matrix, flat)
                try:
                    _epoch, users, writers = live.pop(key)
                except KeyError:
                    raise ScheduleError(
                        f"step {pos}: evict of non-resident element {key}"
                    ) from None
                for q in users:
                    clean, dirty = per_node.setdefault(q, ([], []))
                    (dirty if step.writeback and q in writers else clean).append(flat)
            place_evicts(pos, step.region.matrix, per_node)
        else:  # pragma: no cover - defensive
            raise ScheduleError(f"step {pos}: unknown step type {type(step).__name__}")

    # Flush anything still live (recorded schedules end empty, but stay total).
    leftovers: dict[str, dict[int, tuple[list[int], list[int]]]] = {}
    for (matrix, flat), (_epoch, users, writers) in live.items():
        for q in users:
            clean, dirty = leftovers.setdefault(matrix, {}).setdefault(q, ([], []))
            (dirty if q in writers else clean).append(flat)
    for matrix, per_node in leftovers.items():
        place_evicts(len(schedule.steps), matrix, per_node)

    # Materialize each node's loads at the original load positions.
    for (epoch, q), flats in epoch_use.items():
        region = Region(
            epoch_matrix[epoch],
            np.sort(np.fromiter(flats, dtype=np.int64, count=len(flats))),
        )
        placed[q].append((epoch, -1, LoadStep(region)))

    shards = []
    for steps in placed:
        steps.sort(key=lambda t: (t[0], t[1]))
        shards.append(Schedule(steps=[s for _, _, s in steps], shapes=dict(schedule.shapes)))
    return shards


# ---------------------------------------------------------------------- #
# the executor
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardReport:
    """Communication/work accounting for one node's shard."""

    node: int
    n_ops: int
    recv: int            # elements loaded by the node's replay (receives)
    send: int            # elements stored by the node's replay (sends)
    transfer_in: int     # cross-shard elements received from peer nodes
    transfer_out: int    # cross-shard elements sent to peer nodes
    mults: int
    peak_memory: int

    @property
    def total_comm(self) -> int:
        """Both directions of the node's boundary traffic."""
        return self.recv + self.send


@dataclass(frozen=True)
class ExecutorSummary:
    """Fleet-level summary of one sharded DAG execution.

    Statistics follow the guarded conventions of
    :class:`~repro.parallel.simulate.ParallelSummary`: empty fleets and
    idle shards yield neutral values instead of raising.
    """

    p: int
    s: int
    policy: str
    partitioner: str
    n_ops: int
    #: unweighted DAG span in *ops* (chain length, not work) — do not
    #: compare against compute volumes; that is what
    #: :attr:`critical_path_mults` is for.
    critical_path: int
    cut_edge_count: int
    owner: tuple[int, ...]
    shards: tuple[ShardReport, ...]
    #: weighted DAG span in *mults*: the runtime floor on unboundedly many
    #: nodes with free communication, same unit as ``total_mults``.
    critical_path_mults: int = 0
    #: weighted makespan of this (owner, recorded order) pair under the
    #: latency model (per-op cost = mults, per-cross-edge cost =
    #: alpha + beta * transferred elements).
    makespan: float = 0.0
    alpha: float = 1.0
    beta: float = 1.0
    #: the full :class:`~repro.parallel.makespan.MakespanResult` behind
    #: :attr:`makespan`, carrying the per-op ``start``/``finish``/``node``
    #: timeline — what ``--timeline`` exports via
    #: :func:`repro.obs.timeline.export_timeline`.
    makespan_result: "MakespanResult | None" = None

    @property
    def max_recv(self) -> int:
        return max((r.recv for r in self.shards), default=0)

    @property
    def mean_recv(self) -> float:
        return fleet_mean([r.recv for r in self.shards])

    @property
    def max_send(self) -> int:
        return max((r.send for r in self.shards), default=0)

    @property
    def max_recv_incl_transfers(self) -> int:
        """Receives plus peer transfers — the conservative per-node charge.

        A node's replay loads already include the first receive of every
        peer-produced element; adding ``transfer_in`` on top also charges
        the forwarding hop explicitly, an upper estimate that can never
        under-state the cross-node traffic.
        """
        return max((r.recv + r.transfer_in for r in self.shards), default=0)

    @property
    def total_recv(self) -> int:
        return sum(r.recv for r in self.shards)

    @property
    def total_transfer(self) -> int:
        """Node-to-node elements (each counted once per src/dst shard pair).

        Summed over the receiving side; :func:`execute_graph` asserts the
        sending side (:attr:`total_transfer_out`) sums to the same value —
        every transferred element leaves exactly one shard and arrives at
        exactly one.
        """
        return sum(r.transfer_in for r in self.shards)

    @property
    def total_transfer_out(self) -> int:
        """The sending side of :attr:`total_transfer` (globally equal)."""
        return sum(r.transfer_out for r in self.shards)

    @property
    def max_transfer_out(self) -> int:
        return max((r.transfer_out for r in self.shards), default=0)

    @property
    def total_mults(self) -> int:
        return sum(r.mults for r in self.shards)

    @property
    def compute_imbalance(self) -> float:
        return fleet_imbalance([r.mults for r in self.shards])

    @property
    def peak_ok(self) -> bool:
        return all(r.peak_memory <= self.s for r in self.shards)


def _shard_counts_trace(
    sub: CompiledTrace, s: int, policy: str
) -> tuple[int, int, int]:
    """(recv, send, peak) of one shard replayed by the compiled-trace engine."""
    if policy == "rewrite":
        sched = rewrite_trace(sub, s)
        summary = validate_schedule(sched, s)
        return summary["loads"], summary["stores"], summary["peak_occupancy"]
    replay = lru_replay_trace if policy == "lru" else belady_replay_trace
    r = replay(sub, s)
    # r.distinct is the *parent* interning's element count (sub-traces share
    # it), so the shard's own working set must be counted here.
    distinct = int(np.unique(sub.elem_ids).size)
    return r.loads, r.stores, min(s, distinct)


def execute_graph(
    source: Schedule | CompiledTrace,
    p: int,
    s: int,
    *,
    partitioner: str = "level-greedy",
    policy: str = "rewrite",
    owner: Sequence[int] | None = None,
    graph: DependencyGraph | None = None,
    partitioner_label: str | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> ExecutorSummary:
    """Partition ``source``'s task DAG across ``p`` nodes and replay each shard.

    ``source`` is a recorded schedule or its compiled trace; the DAG is
    extracted once (or passed in via ``graph``, which must carry the same
    trace).  ``owner`` overrides the partitioner with an explicit op-to-node
    map — e.g. :func:`owner_from_assignment` for the SYRK cross-check, or a
    :func:`~repro.parallel.refine.refine_partition` result — reported as
    ``partitioner_label`` (default ``"explicit-owner"``).  The
    ``"explicit"`` policy shards the recorded load/evict stream itself and
    therefore requires ``source`` to be a :class:`Schedule`.  ``alpha`` /
    ``beta`` parameterize the per-edge latency of the weighted makespan
    reported alongside the volume counts.
    """
    if s < 1:
        raise ConfigurationError(f"S must be >= 1, got {s}")
    if policy not in POLICIES:
        raise ConfigurationError(
            f"unknown policy {policy!r}; choose from {', '.join(POLICIES)}"
        )
    if policy == "explicit" and not isinstance(source, Schedule):
        raise ConfigurationError(
            "policy='explicit' shards the recorded load/evict steps and "
            "needs a Schedule, not a bare trace"
        )
    if graph is not None and graph.trace is not None:
        trace = graph.trace  # reuse the compiled trace across sweep calls
        if isinstance(source, CompiledTrace) and source is not trace:
            raise ConfigurationError(
                "graph was built from a different trace than `source`; "
                "pass the graph extracted from this trace"
            )
    else:
        trace = compile_trace(source)
    if graph is None:
        graph = DependencyGraph.from_trace(trace)
    elif len(graph) != trace.n_ops:
        raise ConfigurationError(
            f"graph has {len(graph)} ops but the trace has {trace.n_ops}; "
            "pass the graph extracted from this source"
        )
    if isinstance(source, Schedule):
        # Compiling shares op objects with the schedule, so identity (not
        # just count) pins graph/trace and source to the same recorded run.
        ops = [s.op for s in source.steps if isinstance(s, ComputeStep)]
        same = (
            trace.ops is not None
            and len(ops) == trace.n_ops
            and all(a is b for a, b in zip(ops, trace.ops))
        )
        if not same:
            raise ConfigurationError(
                f"source schedule ({len(ops)} compute steps) and the "
                f"graph/trace ({trace.n_ops} ops) must describe the same "
                "recorded run"
            )
    if owner is None:
        with timed("executor.partition"):
            owner = partition_graph(graph, p, partitioner)
    else:
        owner = [int(q) for q in owner]
        partitioner = partitioner_label or "explicit-owner"
        if len(owner) != len(graph):
            raise ConfigurationError(
                f"owner has {len(owner)} entries for {len(graph)} ops"
            )
        if owner and not (0 <= min(owner) and max(owner) < p):
            raise ConfigurationError(f"owner indices must lie in 0..{p - 1}")

    shard_ops: list[list[int]] = [[] for _ in range(p)]
    for v, q in enumerate(owner):
        shard_ops[q].append(v)  # original order == topological per shard

    cut = graph.cut_edges(owner)
    flows = graph.cut_transfers(owner, cut=cut)
    transfer_in = [0] * p
    transfer_out = [0] * p
    for (src, dst), elems in flows.items():
        transfer_out[src] += len(elems)
        transfer_in[dst] += len(elems)
    # Global conservation (the transfer analogue of the recv/send symmetry
    # check): every transferred element leaves one shard and arrives at one.
    # The same invariant is re-derived statically — per shard, not just
    # globally — by repro.check.conservation over any executor summary.
    if sum(transfer_in) != sum(transfer_out):  # pragma: no cover - defensive
        from ..check.findings import Finding

        message = (
            f"transfer accounting asymmetric: {sum(transfer_in)} received "
            f"vs {sum(transfer_out)} sent"
        )
        raise ScheduleError(
            message,
            finding=Finding(
                code="RPC101",
                message=message,
                context={
                    "received": sum(transfer_in),
                    "sent": sum(transfer_out),
                },
            ),
        )

    explicit_shards = shard_schedule(source, owner, p) if policy == "explicit" else None

    reports = []
    with timed("executor.replay"):
        for q in range(p):
            ops = shard_ops[q]
            mults = sum(int(graph.nodes[v].op.mults) for v in ops)
            if explicit_shards is not None:
                m = TwoLevelMachine(s, strict=False, numerics=False)
                for name, shape in trace.shapes.items():
                    m.add_matrix(name, np.zeros(shape))
                for step in explicit_shards[q].steps:
                    if isinstance(step, LoadStep):
                        m.load(step.region)
                    elif isinstance(step, EvictStep):
                        m.evict(step.region, writeback=step.writeback)
                    else:
                        m.compute(step.op)
                m.assert_empty()
                recv, send, peak = m.stats.loads, m.stats.stores, m.stats.peak_occupancy
            elif not ops:
                recv = send = peak = 0
            else:
                recv, send, peak = _shard_counts_trace(trace.select_ops(ops), s, policy)
            reports.append(
                ShardReport(
                    node=q,
                    n_ops=len(ops),
                    recv=int(recv),
                    send=int(send),
                    transfer_in=transfer_in[q],
                    transfer_out=transfer_out[q],
                    mults=mults,
                    peak_memory=int(peak),
                )
            )
    mult_weights = [float(node.op.mults) for node in graph.nodes]
    with timed("executor.makespan"):
        span = makespan_model(
            graph, owner, p=p, alpha=alpha, beta=beta, weights=mult_weights
        )
    probe = get_probe()
    if probe.enabled:
        probe.count("executor.runs")
        probe.count("executor.ops", len(graph))
        probe.count("executor.cut_edges", len(cut))
        probe.count("executor.transfer_elements", sum(transfer_in))
    return ExecutorSummary(
        p=p,
        s=s,
        policy=policy,
        partitioner=partitioner,
        n_ops=len(graph),
        critical_path=int(graph.critical_path_cost()),
        cut_edge_count=len(cut),
        owner=tuple(owner),
        shards=tuple(reports),
        critical_path_mults=int(span.critical_path),
        makespan=span.makespan,
        alpha=alpha,
        beta=beta,
        makespan_result=span,
    )
