"""Transfer-aware refinement of a sharded execution's op-to-node map.

The one-shot partitioners of :mod:`repro.parallel.executor` fix a trade:
``level-greedy`` balances work but splits reduction classes (paying tens of
thousands of transferred elements on a SYRK DAG), ``owner-computes`` keeps
classes whole but ignores everything else.  This module *searches* the
assignment space between them: take any seed ``owner[]``, propose local
moves — one op, a whole reduction class, or a whole write-group — and keep
the moves that lower the fleet's bounding quantity

    ``max_q ( recv_q + transfer_in_q )``

the per-node receives plus incoming peer transfers that
:attr:`~repro.parallel.executor.ExecutorSummary.max_recv_incl_transfers`
charges and the parallel lower bounds govern.

Replaying every candidate's shards would cost an ``execute_graph`` per
proposal; instead :class:`PartitionLedger` maintains an incremental model
of the objective (mirroring the ``IncrementalObjective`` design of
:mod:`repro.graph.objective`):

* ``recv_q`` is modeled by node ``q``'s *footprint* — the distinct
  elements its ops touch, i.e. the shard's compulsory misses, a lower
  bound on (and at these shard sizes the bulk of) its replay loads —
  maintained as per-element reference counts;
* ``transfer_in_q`` is maintained *exactly*: every data-carrying edge's
  flow elements are precomputed once
  (:meth:`~repro.graph.dependency.DependencyGraph.edge_flow`, the same
  rules as ``cut_transfers``), and per ``(src, dst, element)`` reference
  counts keep the deduplicated per-pair transfer volumes correct under
  arbitrary moves.

Moving one op updates both in time proportional to its footprint and
incident edges.  Two strategies drive the ledger: steepest-descent
``greedy`` (move work off — or producers onto — the bottleneck node) and
``anneal`` via the same Metropolis move/accept loop as the order search
(:func:`repro.graph.search.anneal_minimize`); ``greedy+anneal`` chains
them.

The model is a proxy, so the refiner never trusts it: the returned
assignment is re-measured with real per-shard replays
(:func:`partition_cost`) against the seed, and the seed is returned
whenever the search result does not genuinely improve the measured
objective — refinement can never hand back a worse partition than it was
given.  Legality is structural: every op keeps exactly one owner in
``0..p-1`` (an exact cover of the op set), and ``keep_writers_together``
restricts moves to whole write-groups so an owner-computes-style seed
keeps its every-element-written-by-one-node invariant — the same
write-set constraint :func:`~repro.parallel.executor.owner_from_assignment`
enforces when deriving owners from a block assignment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigurationError
from ..graph.dependency import DependencyGraph
from ..graph.search import anneal_minimize
from ..obs.convergence import AnnealSeries, RoundSeries
from ..obs.probe import get_probe
from ..perf.pool import parallel_map, task_seed
from ..trace.replay import belady_replay_trace, lru_replay_trace
from ..utils.unionfind import DisjointSets
from .partition import balance_cap

#: Refinement strategies, in the order the CLI and benches report them.
REFINE_STRATEGIES = ("greedy", "anneal", "greedy+anneal")

#: Destinations the greedy pass tries per move (the cheapest nodes first);
#: the Metropolis strategy explores all of them.
_GREEDY_TARGETS = 4

#: Moves the greedy pass measures before falling back to the full scan —
#: candidates are ranked first (private footprint / incoming flow), so the
#: pool almost always contains the winning move and a pass stays far
#: cheaper than evaluating every (unit, target) pair.
_GREEDY_POOL = 48

#: Replay policies :func:`partition_cost` accepts.  ``"belady"`` equals the
#: executor's ``"rewrite"`` load volume by construction (furthest-next-use
#: eviction is MIN for a fixed order); ``"lru"`` is the hardware-style count.
EVAL_POLICIES = ("belady", "lru")


def partition_cost(
    graph: DependencyGraph,
    owner: Sequence[int],
    p: int,
    s: int,
    *,
    policy: str = "belady",
) -> int:
    """The measured ``max_q(recv_q + transfer_in_q)`` of an assignment.

    Each shard's sub-trace is sliced from the graph's compiled trace
    (shared interning, no recompilation) and replayed by the array engine
    for ``policy`` at capacity ``s``; incoming transfers come from
    :meth:`~repro.graph.dependency.DependencyGraph.cut_transfers`.  This
    is exactly what :func:`~repro.parallel.executor.execute_graph` reports
    as ``max_recv_incl_transfers`` (``"belady"`` here matches its
    ``"rewrite"`` and ``"belady"`` policies' loads).
    """
    if graph.trace is None:
        raise ConfigurationError(
            "partition_cost needs the graph's compiled trace; build the "
            "graph with DependencyGraph.from_trace/from_schedule"
        )
    if policy not in EVAL_POLICIES:
        raise ConfigurationError(
            f"unknown eval policy {policy!r}; choose from {', '.join(EVAL_POLICIES)}"
        )
    if len(owner) != len(graph):
        raise ConfigurationError(
            f"owner has {len(owner)} entries for {len(graph)} ops"
        )
    if len(graph) and not (0 <= min(owner) and max(owner) < p):
        raise ConfigurationError(f"owner indices must lie in 0..{p - 1}")
    transfer_in = [0] * p
    for (_src, dst), elems in graph.cut_transfers(list(owner)).items():
        transfer_in[dst] += len(elems)
    shard_ops: list[list[int]] = [[] for _ in range(p)]
    for v, q in enumerate(owner):
        shard_ops[q].append(v)
    replay = belady_replay_trace if policy == "belady" else lru_replay_trace
    worst = 0
    for q in range(p):
        recv = replay(graph.trace.select_ops(shard_ops[q]), s).loads if shard_ops[q] else 0
        worst = max(worst, recv + transfer_in[q])
    return worst


def write_groups(graph: DependencyGraph) -> list[list[int]]:
    """Maximal op groups linked by shared written elements.

    The owner-computes granularity: keeping each group on one node keeps
    every element written by exactly one node (no reduction class ever
    splits).  Singleton groups are included, so the list partitions the
    op set.
    """
    sets = DisjointSets(len(graph))
    writer_of: dict[int, int] = {}
    for v, node in enumerate(graph.nodes):
        for key in node.write_keys:
            u = writer_of.setdefault(key, v)
            if u != v:
                sets.union(v, u)
    return sorted(sets.groups().values(), key=lambda g: g[0])


def movable_units(
    graph: DependencyGraph, *, keep_writers_together: bool = False
) -> tuple[list[list[int]], list[list[int]]]:
    """The ownership-move granularity shared by the refiner and co-search.

    Returns ``(units, op_units)``: the movable op groups and, per op, the
    indices of the units containing it.  Write-groups when the exclusive-
    writer invariant must survive; otherwise single ops plus whole
    reduction classes (the group moves that relocate a ``+=`` chain
    without ever splitting it).
    """
    if keep_writers_together:
        units = write_groups(graph)
    else:
        units = [[v] for v in range(len(graph))]
        units.extend(graph.reduction_classes())
    op_units: list[list[int]] = [[] for _ in range(len(graph))]
    for ui, group in enumerate(units):
        for v in group:
            op_units[v].append(ui)
    return units, op_units


class PartitionLedger:
    """Incremental ``max_q(footprint_q + transfer_in_q)`` under op moves.

    The refiner's search state: per-node element reference counts model
    the receives, per-``(src, dst, element)`` reference counts keep the
    deduplicated transfer volumes exact, and per-node mults track the
    balance constraint.  :meth:`move` / :meth:`move_group` apply an
    assignment change in time proportional to the moved ops' footprints
    and incident data edges; moving back restores the state exactly, which
    is what makes candidate evaluation (apply, read :meth:`cost`, revert)
    cheap enough to run thousands of proposals.
    """

    def __init__(self, graph: DependencyGraph, owner: Sequence[int], p: int):
        if len(owner) != len(graph):
            raise ConfigurationError(
                f"owner has {len(owner)} entries for {len(graph)} ops"
            )
        if len(graph) and not (0 <= min(owner) and max(owner) < p):
            raise ConfigurationError(f"owner indices must lie in 0..{p - 1}")
        self.graph = graph
        self.p = p
        self.owner = [int(q) for q in owner]
        self.touched = [tuple(node.touched_keys()) for node in graph.nodes]
        self.weights = [max(int(node.op.mults), 1) for node in graph.nodes]
        # Data-carrying edges once; incidence lists drive per-move updates.
        self.edges: list[tuple[int, int, tuple[int, ...]]] = []
        self.incident: list[list[int]] = [[] for _ in range(len(graph))]
        for u, v, kinds in graph.edges():
            elems = graph.edge_flow(u, v, kinds)
            if elems:
                idx = len(self.edges)
                self.edges.append((u, v, tuple(sorted(elems))))
                self.incident[u].append(idx)
                self.incident[v].append(idx)
        # Footprint state.
        self.elem_count: list[dict[int, int]] = [dict() for _ in range(p)]
        self.footprint = [0] * p
        self.loads = [0] * p
        for v, q in enumerate(self.owner):
            self.loads[q] += self.weights[v]
            counts = self.elem_count[q]
            for e in self.touched[v]:
                if counts.get(e, 0) == 0:
                    self.footprint[q] += 1
                counts[e] = counts.get(e, 0) + 1
        # Transfer state.
        self.pair_count: dict[tuple[int, int, int], int] = {}
        self.transfer_in = [0] * p
        self.transfer_out = [0] * p
        for idx in range(len(self.edges)):
            self._edge_charge(idx, +1)

    def _edge_charge(self, idx: int, sign: int) -> None:
        u, v, elems = self.edges[idx]
        src, dst = self.owner[u], self.owner[v]
        if src == dst:
            return
        pair_count = self.pair_count
        for e in elems:
            key = (src, dst, e)
            c = pair_count.get(key, 0) + sign
            if c:
                pair_count[key] = c
            else:
                del pair_count[key]
            if (sign > 0 and c == 1) or (sign < 0 and c == 0):
                self.transfer_in[dst] += sign
                self.transfer_out[src] += sign

    def move(self, v: int, q: int) -> None:
        """Reassign op ``v`` to node ``q`` (no-op when already there)."""
        old = self.owner[v]
        if old == q:
            return
        for idx in self.incident[v]:
            self._edge_charge(idx, -1)
        self.owner[v] = q
        for idx in self.incident[v]:
            self._edge_charge(idx, +1)
        w = self.weights[v]
        self.loads[old] -= w
        self.loads[q] += w
        out_counts, in_counts = self.elem_count[old], self.elem_count[q]
        for e in self.touched[v]:
            c = out_counts[e] - 1
            if c:
                out_counts[e] = c
            else:
                del out_counts[e]
                self.footprint[old] -= 1
            c = in_counts.get(e, 0)
            if c == 0:
                self.footprint[q] += 1
            in_counts[e] = c + 1

    def move_group(self, group: Sequence[int], q: int) -> list[tuple[int, int]]:
        """Move every op of ``group`` to ``q``; returns the undo list."""
        undo = [(v, self.owner[v]) for v in group]
        for v in group:
            self.move(v, q)
        return undo

    def undo(self, undo: list[tuple[int, int]]) -> None:
        """Revert a :meth:`move_group` (restore in reverse order)."""
        for v, q in reversed(undo):
            self.move(v, q)

    def node_cost(self, q: int) -> int:
        return self.footprint[q] + self.transfer_in[q]

    def cost(self) -> int:
        """The model objective: ``max_q(footprint_q + transfer_in_q)``."""
        return max(
            (f + t for f, t in zip(self.footprint, self.transfer_in)), default=0
        )

    def bottleneck(self) -> int:
        """The node attaining :meth:`cost` (lowest index on ties)."""
        return max(range(self.p), key=lambda q: (self.node_cost(q), -q))


@dataclass
class RefineResult:
    """One refinement run: the chosen assignment plus its accounting."""

    graph: DependencyGraph
    p: int
    s: int
    strategy: str
    seed_owner: tuple[int, ...]
    owner: tuple[int, ...]
    #: measured ``max(recv + transfer_in)`` of the seed / returned owner
    #: (:func:`partition_cost` under ``eval_policy``).
    seed_cost: int = 0
    cost: int = 0
    #: the incremental model's objective for the same two assignments.
    model_seed: int = 0
    model_cost: int = 0
    moves: int = 0
    evaluations: int = 0
    #: True when the search's best model assignment lost to the seed on
    #: the measured objective and the seed was returned instead.
    reverted: bool = False
    params: dict = field(default_factory=dict)
    #: convergence traces keyed by engine: ``"greedy"`` maps to a
    #: :class:`~repro.obs.convergence.RoundSeries` (one row per accepted
    #: move), ``"anneal"`` to an
    #: :class:`~repro.obs.convergence.AnnealSeries` (one row per Metropolis
    #: iteration).  Populated when ``record_convergence=True`` or a
    #: recording probe is active; empty otherwise.
    convergence: dict = field(default_factory=dict)

    @property
    def improved(self) -> bool:
        return self.cost < self.seed_cost


def _greedy_pass(
    ledger: PartitionLedger,
    units: list[list[int]],
    op_units: list[list[int]],
    cap: int | None,
) -> tuple[int, list[tuple[int, int]]] | None:
    """The best strictly-improving move off (or onto) the bottleneck node.

    Candidate units are the movable units with an op on the bottleneck
    node, plus units producing transfers into it (pulling a producer onto
    the bottleneck removes cross flow without shrinking its work).  Every
    candidate is applied, measured, and reverted; returns the evaluation
    count plus the applied best move's undo list, or ``None`` at a local
    optimum.
    """
    b = ledger.bottleneck()
    current = ledger.cost()
    # Rank the candidates by how much of the bottleneck's cost they could
    # carry away: for units on b, the elements only they pin there
    # (private footprint); for peer units, the flow they push into b
    # (pulling the producer onto b deletes that transfer).
    counts_b = ledger.elem_count[b]
    scores: dict[int, int] = {}
    for v, q in enumerate(ledger.owner):
        if q != b:
            continue
        private = sum(1 for e in ledger.touched[v] if counts_b[e] == 1)
        for ui in op_units[v]:
            scores[ui] = scores.get(ui, 0) + private
        for idx in ledger.incident[v]:
            u, w, elems = ledger.edges[idx]
            # Only producers feeding v matter: pulling one onto b deletes
            # transfer_in; pulling a *consumer* of v onto b only grows b's
            # footprint, so it never improves the objective.
            if w == v and ledger.owner[u] != b:
                for ui in op_units[u]:
                    scores[ui] = scores.get(ui, 0) + len(elems)
    ranked = sorted(scores, key=lambda ui: (-scores[ui], ui))
    # Off-bottleneck moves only help when the destination stays below the
    # bottleneck, so trying more than the few cheapest destinations buys
    # nothing: prune to the _GREEDY_TARGETS lowest-cost nodes.
    away = sorted(
        (q for q in range(ledger.p) if q != b),
        key=lambda q: (ledger.node_cost(q), ledger.loads[q], q),
    )[:_GREEDY_TARGETS]
    best: tuple[int, int, int, int] | None = None  # cost, weight, unit, target
    evaluations = 0
    for pool in (ranked[:_GREEDY_POOL], ranked[_GREEDY_POOL:]):
        for ui in pool:
            group = units[ui]
            on_b = any(ledger.owner[v] == b for v in group)
            targets = away if on_b else (b,)
            for q in targets:
                movers = [v for v in group if ledger.owner[v] != q]
                if not movers:
                    continue
                weight = sum(ledger.weights[v] for v in movers)
                if cap is not None and ledger.loads[q] + weight > cap:
                    continue
                undo = ledger.move_group(group, q)
                c = ledger.cost()
                evaluations += 1
                ledger.undo(undo)
                if c < current and (best is None or (c, weight) < best[:2]):
                    best = (c, weight, ui, q)
        if best is not None:
            break  # steepest within the ranked pool; full scan only to
            # certify a local optimum
    if best is None:
        return None
    _cost, _w, ui, q = best
    return evaluations, ledger.move_group(units[ui], q)


def refine_partition(
    graph: DependencyGraph,
    owner: Sequence[int],
    p: int,
    s: int,
    *,
    strategy: str = "greedy",
    iters: int = 600,
    seed: int = 0,
    max_moves: int = 256,
    balance_slack: float | None = 1.5,
    keep_writers_together: bool = False,
    eval_policy: str = "belady",
    t_start: float = 1.5,
    t_end: float = 0.05,
    record_convergence: bool = False,
) -> RefineResult:
    """Locally search the assignment space around a seed ``owner[]``.

    ``strategy`` is one of :data:`REFINE_STRATEGIES`.  ``balance_slack``
    caps every node's mults at ``slack * total / p`` (exact integer cap,
    :func:`~repro.parallel.partition.balance_cap`; relaxed to the seed's
    own maximum when the seed already exceeds it); ``None`` disables the
    constraint.  ``keep_writers_together`` restricts moves to whole
    write-groups, preserving an owner-computes seed's exclusive-writer
    invariant.  The returned assignment is guaranteed — by a final
    measured comparison under ``eval_policy`` — to never exceed the seed's
    ``max(recv + transfer_in)``.  ``record_convergence`` fills
    :attr:`RefineResult.convergence` with the per-engine model-cost
    trajectories (implied whenever a recording probe is active); recording
    touches no RNG, so a recorded run returns bit-identical assignments.
    """
    if strategy not in REFINE_STRATEGIES:
        raise ConfigurationError(
            f"unknown refine strategy {strategy!r}; "
            f"choose from {', '.join(REFINE_STRATEGIES)}"
        )
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    if s < 1:
        raise ConfigurationError(f"S must be >= 1, got {s}")
    if iters < 0:
        raise ConfigurationError(f"iters must be >= 0, got {iters}")
    if max_moves < 0:
        raise ConfigurationError(f"max_moves must be >= 0, got {max_moves}")

    ledger = PartitionLedger(graph, owner, p)
    seed_owner = tuple(ledger.owner)
    model_seed = ledger.cost()
    params: dict = {
        "strategy": strategy, "iters": iters, "seed": seed,
        "max_moves": max_moves, "balance_slack": balance_slack,
        "keep_writers_together": keep_writers_together,
    }

    units, op_units = movable_units(
        graph, keep_writers_together=keep_writers_together
    )

    cap = None
    if balance_slack is not None:
        cap = max(
            balance_cap(sum(ledger.weights), p, balance_slack),
            max(ledger.loads, default=0),
        )

    best_owner = list(seed_owner)
    best_model = model_seed
    moves = 0
    evaluations = 0
    probe = get_probe()
    record = record_convergence or probe.enabled
    convergence: dict = {}

    def capture_if_best() -> None:
        nonlocal best_owner, best_model
        c = ledger.cost()
        if c < best_model:
            best_owner, best_model = list(ledger.owner), c

    if strategy in ("greedy", "greedy+anneal"):
        greedy_series = None
        if record:
            greedy_series = RoundSeries(label="refine.greedy", engine="greedy")
            greedy_series.add(0, best_model)  # round 0: the seed's model cost
            convergence["greedy"] = greedy_series
        while moves < max_moves:
            step = _greedy_pass(ledger, units, op_units, cap)
            if step is None:
                break
            n_evals, _undo = step
            evaluations += n_evals
            moves += 1
            capture_if_best()
            if greedy_series is not None:
                greedy_series.add(moves, best_model)

    if strategy in ("anneal", "greedy+anneal") and len(graph) and p > 1:
        anneal_series = None
        if record:
            anneal_series = AnnealSeries(label="refine.anneal")
            convergence["anneal"] = anneal_series
        rng = random.Random(seed)
        group_units = [g for g in units if len(g) > 1]

        def step(step_rng: random.Random):
            if group_units and step_rng.random() < 0.3:
                group = group_units[step_rng.randrange(len(group_units))]
            else:
                group = units[op_units[step_rng.randrange(len(graph))][0]]
            q = step_rng.randrange(p)
            if all(ledger.owner[v] == q for v in group):
                return None
            if cap is not None:
                weight = sum(
                    ledger.weights[v] for v in group if ledger.owner[v] != q
                )
                if ledger.loads[q] + weight > cap:
                    return None
            undo = ledger.move_group(group, q)
            cand = ledger.cost()
            ledger.undo(undo)

            def commit() -> None:
                nonlocal moves
                ledger.move_group(group, q)
                moves += 1
                capture_if_best()

            return cand, commit

        _final, stats = anneal_minimize(
            ledger.cost(), step, iters=iters, rng=rng,
            t_start=t_start, t_end=t_end, series=anneal_series,
        )
        evaluations += stats.evaluations
        params["accepted"] = stats.accepted
        params["skipped"] = stats.skipped
        params["acceptance_rate"] = stats.acceptance_rate

    # The model ranked the candidates; the measured objective decides.
    # Re-measuring seed and winner costs two shard replays total — never
    # one per proposal — and makes "never worse than the seed" a hard
    # postcondition rather than a hope.
    seed_cost = partition_cost(graph, seed_owner, p, s, policy=eval_policy)
    refined_cost = (
        partition_cost(graph, best_owner, p, s, policy=eval_policy)
        if tuple(best_owner) != seed_owner
        else seed_cost
    )
    reverted = refined_cost > seed_cost
    if reverted:
        best_owner, refined_cost, best_model = list(seed_owner), seed_cost, model_seed
    if probe.enabled:
        probe.count("refine.runs")
        probe.count("refine.moves", moves)
        probe.count("refine.evaluations", evaluations)
        if reverted:
            probe.count("refine.reverted")
        for engine, series in convergence.items():
            probe.attach(f"convergence.refine.{engine}", series)
    return RefineResult(
        graph=graph,
        p=p,
        s=s,
        strategy=strategy,
        seed_owner=seed_owner,
        owner=tuple(best_owner),
        seed_cost=seed_cost,
        cost=refined_cost,
        model_seed=model_seed,
        model_cost=best_model,
        moves=moves,
        evaluations=evaluations,
        reverted=reverted,
        params=params,
        convergence=convergence,
    )


def _refine_task(task) -> RefineResult:
    """Module-level (picklable) worker: refine one seed assignment.

    The result ships back without its graph reference — the parent holds
    the one shared graph and reattaches it, so workers never pickle the
    whole DAG into their return value.
    """
    graph, owner, p, s, kwargs = task
    result = refine_partition(graph, owner, p, s, **kwargs)
    result.graph = None
    return result


def refine_partitions(
    graph: DependencyGraph,
    owners: "Sequence[Sequence[int]]",
    p: int,
    s: int,
    *,
    jobs: int = 1,
    seed: int = 0,
    record_convergence: bool = False,
    **kwargs,
) -> list[RefineResult]:
    """Refine many seed assignments concurrently; results in seed order.

    The multi-seed fan-out behind ``--jobs``: every seed partition in
    ``owners`` (e.g. one per partitioner) goes through
    :func:`refine_partition` with its own disjoint RNG stream —
    ``task_seed(seed, i)`` for seed index ``i``, so index 0 reproduces
    ``refine_partition(..., seed=seed)`` bit for bit and the whole result
    list is independent of ``jobs`` (the serial reduction order is simply
    seed-list order).  Each refinement keeps its own never-worse
    postcondition; remaining keyword arguments pass through unchanged.

    Worker probes are process-local, so under ``jobs > 1`` the parent
    re-emits the aggregate ``refine.{runs,moves,evaluations,reverted}``
    counters after the merge (convergence series still travel back on the
    results themselves).
    """
    tasks = []
    probe = get_probe()
    for i, owner in enumerate(owners):
        task_kwargs = dict(
            kwargs,
            seed=task_seed(seed, i),
            record_convergence=record_convergence or probe.enabled,
        )
        tasks.append((graph, list(owner), p, s, task_kwargs))
    if not tasks:
        return []
    jobs = min(int(jobs), len(tasks))
    if jobs <= 1:
        # In-process: refine_partition emits its own probe counters and
        # attachments; no graph stripping needed.
        return [refine_partition(g, o, pp, ss, **kw) for g, o, pp, ss, kw in tasks]
    results = parallel_map(_refine_task, tasks, jobs=jobs)
    for result in results:
        result.graph = graph
    if probe.enabled:
        probe.count("refine.runs", len(results))
        probe.count("refine.moves", sum(r.moves for r in results))
        probe.count("refine.evaluations", sum(r.evaluations for r in results))
        reverted = sum(1 for r in results if r.reverted)
        if reverted:
            probe.count("refine.reverted", reverted)
        for i, result in enumerate(results):
            for engine, series in result.convergence.items():
                probe.attach(f"convergence.refine.{engine}", series)
    return results
