"""Weighted critical-path / latency model for sharded DAG executions.

The executor's volume counts (receives, transfers) say how many elements
move, but two partitions with equal volumes can still finish at very
different times: one may serialize its work on a bottleneck node or chain
its transfers along the critical path.  This module scores any
``(owner, order)`` pair with the classic DAG-scheduling makespan model:

* every op ``v`` costs ``weights[v]`` time units on its node (the fleet
  convention is *mults*, so makespans are comparable to compute volumes);
* ops placed on the same node serialize in ``order`` (each node is one
  sequential worker — exactly how the executor replays a shard);
* a dependence edge crossing nodes charges a latency of
  ``alpha + beta * transferred elements``, where the transferred elements
  are the edge's data flow under the same RAW/reduction rules as
  :meth:`~repro.graph.dependency.DependencyGraph.cut_transfers`
  (WAR/WAW-only cross edges carry no data and pay the fixed ``alpha``
  synchronization cost only);
* same-node edges cost nothing beyond the serialization they imply.

``finish(v)`` is then ``max(node available, max over preds of
finish(u) + edge latency) + weights[v]`` and the makespan is the largest
finish time.  :func:`makespan_model` computes the whole timeline from
cold — fine for scoring a finished run, hopeless inside a search loop
that re-scores thousands of candidate ``(order, owner)`` pairs.
:class:`MakespanLedger` is the delta-evaluating form the joint co-search
(:mod:`repro.parallel.cosearch`) drives: edge latencies are precomputed
once, the forward pass is checkpointed every ``interval`` positions, and
a candidate differing from the committed state only from position ``i``
on re-runs the pass from the nearest checkpoint at or before ``i`` —
bit-identical to the cold model by construction (same float operations
in the same association order; pinned by a randomized regression test).  The per-op ``start``/``finish``/``node`` arrays are part of
the result (not just their max): they are the full simulated timeline,
exportable as a Perfetto-openable Chrome trace via
:func:`repro.obs.timeline.export_timeline`.  Two classical floors come for free and are reported next to
it: the weighted critical path
(:meth:`~repro.graph.dependency.DependencyGraph.critical_path_cost` — the
runtime on unboundedly many nodes with free communication) and the
busiest node's total work (the runtime with free dependences).  The
makespan can never undercut either — with one caveat: ``critical_path``
always walks the *full* edge set, so under ``relax_reductions=True``
(where reduction-only timing edges are dropped from the makespan) a
reordered chain can legitimately finish below it; ``max_busy`` remains a
floor in every mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError, ScheduleError
from ..graph.dependency import DependencyGraph


@dataclass(frozen=True)
class MakespanResult:
    """Latency accounting of one ``(owner, order)`` pair."""

    p: int
    alpha: float
    beta: float
    #: the largest finish time — the model's estimate of wall-clock, in
    #: op-weight units (mults by default) plus edge latencies.
    makespan: float
    #: weighted critical path: the floor with unbounded nodes and free
    #: communication.
    critical_path: float
    #: per-node summed op weights (busy time, ignoring waits).
    node_busy: tuple[float, ...]
    #: total latency charged on cross-node edges (each edge once).
    comm_latency: float
    n_cross_edges: int
    #: op index that finishes last (-1 for an empty graph).
    bottleneck: int
    #: per-op execution start time: the moment the op's node is free *and*
    #: every predecessor (plus its edge latency) has arrived — i.e.
    #: ``finish[v] - weights[v]``.  Indexed by op, not by order position.
    start: tuple[float, ...] = ()
    #: per-op finish time; ``max(finish) == makespan`` (asserted in tests).
    finish: tuple[float, ...] = ()
    #: per-op node placement (a copy of the scored ``owner``) — with
    #: ``start``/``finish`` this is the full simulated timeline, the data
    #: feed of :func:`repro.obs.timeline.export_timeline`.
    node: tuple[int, ...] = ()

    @property
    def max_busy(self) -> float:
        """The busiest node's work — the floor with free dependences."""
        return max(self.node_busy, default=0.0)

    @property
    def parallel_efficiency(self) -> float:
        """Total work over ``p * makespan`` — 1.0 means no node ever waits."""
        if self.makespan <= 0:
            return 1.0
        return sum(self.node_busy) / (self.p * self.makespan)


def makespan_model(
    graph: DependencyGraph,
    owner: Sequence[int],
    *,
    p: int | None = None,
    order: Sequence[int] | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    weights: Sequence[float] | None = None,
    relax_reductions: bool = False,
) -> MakespanResult:
    """Score the ``(owner, order)`` pair under the latency model.

    ``owner[v]`` places op ``v`` on a node; ``order`` is the global
    execution order (default: the recorded order, which is what the
    executor replays) and must be legal for the graph under
    ``relax_reductions``.  ``weights`` defaults to per-op mults.  ``p``
    defaults to ``max(owner) + 1``; idle trailing nodes are allowed.
    """
    n = len(graph)
    if len(owner) != n:
        raise ConfigurationError(f"owner has {len(owner)} entries for {n} ops")
    top = (max(owner) + 1) if n else 1
    if p is None:
        p = top
    elif p < top:
        raise ConfigurationError(f"owner references node {top - 1} but p = {p}")
    if n and min(owner) < 0:
        raise ConfigurationError("owner indices must be >= 0")
    if alpha < 0 or beta < 0:
        raise ConfigurationError("alpha and beta must be >= 0")
    if weights is None:
        weights = [float(node.op.mults) for node in graph.nodes]
    elif len(weights) != n:
        raise ConfigurationError(f"weights has {len(weights)} entries for {n} ops")
    if order is None:
        order = range(n)
    elif not graph.is_valid_order(list(order), relax_reductions=relax_reductions):
        raise ScheduleError("makespan order is not a legal order of the graph")

    start = [0.0] * n
    finish = [0.0] * n
    node_avail = [0.0] * p
    node_busy = [0.0] * p
    comm_latency = 0.0
    n_cross = 0
    bottleneck = -1
    makespan = 0.0
    for v in order:
        q = owner[v]
        t = node_avail[q]
        # Relaxed orders may reorder within a reduction class; the dropped
        # reduction-only edges then carry no timing constraint either.
        for u in graph.effective_preds(v, relax_reductions=relax_reductions):
            kinds = graph.preds[v][u]
            if owner[u] == q:
                arrival = finish[u]
            else:
                latency = alpha + beta * len(graph.edge_flow(u, v, frozenset(kinds)))
                arrival = finish[u] + latency
                comm_latency += latency
                n_cross += 1
            if arrival > t:
                t = arrival
        start[v] = t
        finish[v] = t + float(weights[v])
        node_avail[q] = finish[v]
        node_busy[q] += float(weights[v])
        if finish[v] > makespan:
            makespan, bottleneck = finish[v], v
    return MakespanResult(
        p=p,
        alpha=alpha,
        beta=beta,
        makespan=makespan,
        critical_path=graph.critical_path_cost(list(weights)),
        node_busy=tuple(node_busy),
        comm_latency=comm_latency,
        n_cross_edges=n_cross,
        bottleneck=bottleneck,
        start=tuple(start),
        finish=tuple(finish),
        node=tuple(int(q) for q in owner),
    )


class MakespanLedger:
    """Checkpointed delta evaluation of :func:`makespan_model`.

    The search-loop form of the latency model: hold one committed
    ``(order, owner)`` pair plus its full forward pass, score a candidate
    that differs only from position ``from_pos`` onward by re-running the
    pass from the nearest checkpoint, and :meth:`commit` the candidate in
    the accepted case.  Per-edge latencies (``alpha + beta * flow``) are
    computed once at construction, so a proposal costs time proportional
    to the re-scored suffix, not to the edge set.

    Bit-identity contract: :meth:`score` performs exactly the float
    operations of :func:`makespan_model` in the same association order
    (each edge's latency is one precomputed double, ``arrival = finish[u]
    + latency``), so a ledger walk and a cold model recompute of the same
    pair agree to the last bit — the co-search relies on this to
    cross-check its winner against the measured model.

    Caller contract for :meth:`score`: the candidate pair must agree with
    the committed state on every position below ``from_pos`` — both the
    op placed there and that op's owner.  (Both move kinds of the
    co-search satisfy this by construction: an order move changes a
    window ``[i, j)`` and passes ``from_pos=i``; an ownership move passes
    the smallest committed position of a moved op.)  The candidate order
    must be a legal order of the graph; legality is the caller's
    responsibility — this class never re-validates inside the hot loop.
    """

    def __init__(
        self,
        graph: DependencyGraph,
        owner: Sequence[int],
        *,
        p: int | None = None,
        order: Sequence[int] | None = None,
        alpha: float = 1.0,
        beta: float = 1.0,
        weights: Sequence[float] | None = None,
        relax_reductions: bool = False,
        interval: int | None = None,
    ):
        n = len(graph)
        if len(owner) != n:
            raise ConfigurationError(f"owner has {len(owner)} entries for {n} ops")
        top = (max(owner) + 1) if n else 1
        if p is None:
            p = top
        elif p < top:
            raise ConfigurationError(f"owner references node {top - 1} but p = {p}")
        if n and min(owner) < 0:
            raise ConfigurationError("owner indices must be >= 0")
        if alpha < 0 or beta < 0:
            raise ConfigurationError("alpha and beta must be >= 0")
        if weights is None:
            weights = [float(node.op.mults) for node in graph.nodes]
        elif len(weights) != n:
            raise ConfigurationError(f"weights has {len(weights)} entries for {n} ops")
        if order is None:
            order = list(range(n))
        elif not graph.is_valid_order(list(order), relax_reductions=relax_reductions):
            raise ScheduleError("makespan order is not a legal order of the graph")
        if interval is not None and interval < 1:
            raise ConfigurationError(f"interval must be >= 1, got {interval}")

        self.graph = graph
        self.p = p
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.relax_reductions = relax_reductions
        self.weights = [float(w) for w in weights]
        self.interval = int(interval) if interval is not None else max(8, n // 64)
        # One precomputed double per effective edge: the cross-node latency
        # it would charge.  Same-node edges read finish[u] directly.
        self._preds: list[tuple[tuple[int, float], ...]] = [
            tuple(
                (
                    u,
                    self.alpha
                    + self.beta
                    * len(graph.edge_flow(u, v, frozenset(graph.preds[v][u]))),
                )
                for u in graph.effective_preds(v, relax_reductions=relax_reductions)
            )
            for v in range(n)
        ]
        self.order = [int(v) for v in order]
        self.owner = [int(q) for q in owner]
        self.pos = [0] * n
        for i, v in enumerate(self.order):
            self.pos[v] = i
        self.finish = [0.0] * n
        self.makespan = 0.0
        self._snaps: list[tuple[tuple[float, ...], float]] = [
            (tuple([0.0] * p), 0.0)
        ]
        self._pending: tuple | None = None
        self.score()
        self.commit()

    def score(
        self,
        order: "Sequence[int] | None" = None,
        owner: "Sequence[int] | None" = None,
        from_pos: int = 0,
    ) -> float:
        """Makespan of a candidate pair (``None`` = the committed value).

        Re-runs the forward pass from the checkpoint at or before
        ``from_pos`` and stashes the result; :meth:`commit` adopts it,
        a subsequent :meth:`score` discards it.
        """
        n = len(self.graph)
        cand_order = self.order if order is None else order
        cand_owner = self.owner if owner is None else owner
        j0 = min(from_pos // self.interval, len(self._snaps) - 1)
        start = j0 * self.interval
        avail_t, ms = self._snaps[j0]
        avail = list(avail_t)
        finish = self.finish
        preds = self._preds
        weights = self.weights
        interval = self.interval
        new_finish: dict[int, float] = {}
        new_snaps: list[tuple[tuple[float, ...], float]] = []
        for idx in range(start, n):
            if idx % interval == 0:
                new_snaps.append((tuple(avail), ms))
            v = cand_order[idx]
            q = cand_owner[v]
            t = avail[q]
            for u, lat in preds[v]:
                fu = new_finish.get(u)
                if fu is None:
                    fu = finish[u]
                arrival = fu if cand_owner[u] == q else fu + lat
                if arrival > t:
                    t = arrival
            f = t + weights[v]
            new_finish[v] = f
            avail[q] = f
            if f > ms:
                ms = f
        self._pending = (
            j0,
            start,
            None if order is None else [int(v) for v in order],
            None if owner is None else [int(q) for q in owner],
            new_finish,
            new_snaps,
            ms,
        )
        return ms

    def commit(self) -> float:
        """Adopt the last scored candidate as the committed state."""
        if self._pending is None:
            return self.makespan
        j0, start, order, owner, new_finish, new_snaps, ms = self._pending
        if order is not None:
            self.order = order
            for idx in range(start, len(order)):
                self.pos[order[idx]] = idx
        if owner is not None:
            self.owner = owner
        for v, f in new_finish.items():
            self.finish[v] = f
        if new_snaps:  # empty only for an empty graph: keep the cold snap
            self._snaps[j0:] = new_snaps
        self.makespan = ms
        self._pending = None
        return ms
