"""Weighted critical-path / latency model for sharded DAG executions.

The executor's volume counts (receives, transfers) say how many elements
move, but two partitions with equal volumes can still finish at very
different times: one may serialize its work on a bottleneck node or chain
its transfers along the critical path.  This module scores any
``(owner, order)`` pair with the classic DAG-scheduling makespan model:

* every op ``v`` costs ``weights[v]`` time units on its node (the fleet
  convention is *mults*, so makespans are comparable to compute volumes);
* ops placed on the same node serialize in ``order`` (each node is one
  sequential worker — exactly how the executor replays a shard);
* a dependence edge crossing nodes charges a latency of
  ``alpha + beta * transferred elements``, where the transferred elements
  are the edge's data flow under the same RAW/reduction rules as
  :meth:`~repro.graph.dependency.DependencyGraph.cut_transfers`
  (WAR/WAW-only cross edges carry no data and pay the fixed ``alpha``
  synchronization cost only);
* same-node edges cost nothing beyond the serialization they imply.

``finish(v)`` is then ``max(node available, max over preds of
finish(u) + edge latency) + weights[v]`` and the makespan is the largest
finish time.  The per-op ``start``/``finish``/``node`` arrays are part of
the result (not just their max): they are the full simulated timeline,
exportable as a Perfetto-openable Chrome trace via
:func:`repro.obs.timeline.export_timeline`.  Two classical floors come for free and are reported next to
it: the weighted critical path
(:meth:`~repro.graph.dependency.DependencyGraph.critical_path_cost` — the
runtime on unboundedly many nodes with free communication) and the
busiest node's total work (the runtime with free dependences).  The
makespan can never undercut either — with one caveat: ``critical_path``
always walks the *full* edge set, so under ``relax_reductions=True``
(where reduction-only timing edges are dropped from the makespan) a
reordered chain can legitimately finish below it; ``max_busy`` remains a
floor in every mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError, ScheduleError
from ..graph.dependency import DependencyGraph


@dataclass(frozen=True)
class MakespanResult:
    """Latency accounting of one ``(owner, order)`` pair."""

    p: int
    alpha: float
    beta: float
    #: the largest finish time — the model's estimate of wall-clock, in
    #: op-weight units (mults by default) plus edge latencies.
    makespan: float
    #: weighted critical path: the floor with unbounded nodes and free
    #: communication.
    critical_path: float
    #: per-node summed op weights (busy time, ignoring waits).
    node_busy: tuple[float, ...]
    #: total latency charged on cross-node edges (each edge once).
    comm_latency: float
    n_cross_edges: int
    #: op index that finishes last (-1 for an empty graph).
    bottleneck: int
    #: per-op execution start time: the moment the op's node is free *and*
    #: every predecessor (plus its edge latency) has arrived — i.e.
    #: ``finish[v] - weights[v]``.  Indexed by op, not by order position.
    start: tuple[float, ...] = ()
    #: per-op finish time; ``max(finish) == makespan`` (asserted in tests).
    finish: tuple[float, ...] = ()
    #: per-op node placement (a copy of the scored ``owner``) — with
    #: ``start``/``finish`` this is the full simulated timeline, the data
    #: feed of :func:`repro.obs.timeline.export_timeline`.
    node: tuple[int, ...] = ()

    @property
    def max_busy(self) -> float:
        """The busiest node's work — the floor with free dependences."""
        return max(self.node_busy, default=0.0)

    @property
    def parallel_efficiency(self) -> float:
        """Total work over ``p * makespan`` — 1.0 means no node ever waits."""
        if self.makespan <= 0:
            return 1.0
        return sum(self.node_busy) / (self.p * self.makespan)


def makespan_model(
    graph: DependencyGraph,
    owner: Sequence[int],
    *,
    p: int | None = None,
    order: Sequence[int] | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    weights: Sequence[float] | None = None,
    relax_reductions: bool = False,
) -> MakespanResult:
    """Score the ``(owner, order)`` pair under the latency model.

    ``owner[v]`` places op ``v`` on a node; ``order`` is the global
    execution order (default: the recorded order, which is what the
    executor replays) and must be legal for the graph under
    ``relax_reductions``.  ``weights`` defaults to per-op mults.  ``p``
    defaults to ``max(owner) + 1``; idle trailing nodes are allowed.
    """
    n = len(graph)
    if len(owner) != n:
        raise ConfigurationError(f"owner has {len(owner)} entries for {n} ops")
    top = (max(owner) + 1) if n else 1
    if p is None:
        p = top
    elif p < top:
        raise ConfigurationError(f"owner references node {top - 1} but p = {p}")
    if n and min(owner) < 0:
        raise ConfigurationError("owner indices must be >= 0")
    if alpha < 0 or beta < 0:
        raise ConfigurationError("alpha and beta must be >= 0")
    if weights is None:
        weights = [float(node.op.mults) for node in graph.nodes]
    elif len(weights) != n:
        raise ConfigurationError(f"weights has {len(weights)} entries for {n} ops")
    if order is None:
        order = range(n)
    elif not graph.is_valid_order(list(order), relax_reductions=relax_reductions):
        raise ScheduleError("makespan order is not a legal order of the graph")

    start = [0.0] * n
    finish = [0.0] * n
    node_avail = [0.0] * p
    node_busy = [0.0] * p
    comm_latency = 0.0
    n_cross = 0
    bottleneck = -1
    makespan = 0.0
    for v in order:
        q = owner[v]
        t = node_avail[q]
        # Relaxed orders may reorder within a reduction class; the dropped
        # reduction-only edges then carry no timing constraint either.
        for u in graph.effective_preds(v, relax_reductions=relax_reductions):
            kinds = graph.preds[v][u]
            if owner[u] == q:
                arrival = finish[u]
            else:
                latency = alpha + beta * len(graph.edge_flow(u, v, frozenset(kinds)))
                arrival = finish[u] + latency
                comm_latency += latency
                n_cross += 1
            if arrival > t:
                t = arrival
        start[v] = t
        finish[v] = t + float(weights[v])
        node_avail[q] = finish[v]
        node_busy[q] += float(weights[v])
        if finish[v] > makespan:
            makespan, bottleneck = finish[v], v
    return MakespanResult(
        p=p,
        alpha=alpha,
        beta=beta,
        makespan=makespan,
        critical_path=graph.critical_path_cost(list(weights)),
        node_busy=tuple(node_busy),
        comm_latency=comm_latency,
        n_cross_edges=n_cross,
        bottleneck=bottleneck,
        start=tuple(start),
        finish=tuple(finish),
        node=tuple(int(q) for q in owner),
    )
