"""Deterministic worker-pool primitives behind every ``--jobs`` flag.

Design rules, shared by all consumers:

* **Determinism first.**  Results are collected in *task order* (the
  executor's ``map`` preserves input order), so the merged output of a
  fan-out is a pure function of the task list — bit-identical whether it
  ran serially, on 2 workers or on 40.  Randomized tasks draw their seeds
  from :func:`task_seed`, which derives disjoint streams per task index;
  nothing ever depends on scheduling order or worker identity.
* **Serial fallback is the identity.**  ``jobs <= 1`` (or a single task)
  runs a plain in-process loop: no processes, no pickling, no import-time
  side effects — the code path the rest of the test suite already pins.
* **Probes stay in the parent.**  Worker processes start with the default
  null probe, so counters incremented inside a task are lost by design;
  the pool reports what it *can* see from the parent — ``pool.tasks``
  (tasks submitted), ``pool.workers`` (worker processes spawned; 0 on the
  serial path), ``pool.chunks`` (pickled task batches shipped; 0 on the
  serial path) — and wraps every map in the ``pool.map`` phase timer.
  Consumers that need engine counters from fan-out work emit them from
  the parent after the merge (see ``sweep_replay_trace``).
"""

from __future__ import annotations

import hashlib
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..errors import ConfigurationError
from ..obs.probe import get_probe, timed

T = TypeVar("T")
R = TypeVar("R")


def task_seed(seed: int, index: int) -> int:
    """RNG seed for fan-out task ``index`` of a run seeded with ``seed``.

    ``task_seed(seed, 0) == seed``: task 0 of any fan-out is the classic
    serial run, so portfolios are never-worse by construction — their
    deterministic merge includes the result the serial path would have
    produced.  Later indices hash ``(seed, index)`` through SHA-256 into
    disjoint 63-bit streams, avoiding the correlated-neighbor problem of
    ``seed + index`` arithmetic (two runs seeded 0 and 1 would share every
    chain but one).
    """
    if index < 0:
        raise ConfigurationError(f"task index must be >= 0, got {index}")
    if index == 0:
        return int(seed)
    digest = hashlib.sha256(f"repro.perf.task:{int(seed)}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _chunk_count(n_tasks: int, chunk_size: int) -> int:
    return -(-n_tasks // chunk_size)


class SearchPool:
    """A reusable deterministic fan-out pool (context manager).

    ``jobs <= 1`` never creates an executor: :meth:`map` is a plain loop.
    Otherwise the first parallel :meth:`map` lazily spins up one
    ``ProcessPoolExecutor`` that subsequent maps reuse, amortizing worker
    start-up across repeated fan-outs (the CLI's per-partitioner refine
    loop, repeated capacity sweeps).
    """

    def __init__(self, jobs: int = 1, chunk_size: int | None = None):
        self.jobs = int(jobs)
        self.chunk_size = chunk_size
        self._executor: ProcessPoolExecutor | None = None

    def __enter__(self) -> "SearchPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Submit one task; returns its :class:`concurrent.futures.Future`.

        Unlike :meth:`map`, ``submit`` always goes through the process
        executor (created lazily with ``max(1, jobs)`` workers) — it exists
        for callers that need a real future to bridge into another
        scheduler (the serve front end wraps it with
        ``asyncio.wrap_future``), so running inline would defeat the point.
        ``fn`` and ``args`` must be picklable.
        """
        probe = get_probe()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=max(1, self.jobs))
            if probe.enabled:
                probe.count("pool.workers", max(1, self.jobs))
        if probe.enabled:
            probe.count("pool.tasks", 1)
        return self._executor.submit(fn, *args)

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every task; results in task order, always."""
        items: Sequence[T] = list(tasks)
        probe = get_probe()
        with timed("pool.map"):
            if self.jobs <= 1 or len(items) <= 1:
                results = [fn(task) for task in items]
                if probe.enabled:
                    probe.count("pool.tasks", len(items))
                return results
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
                if probe.enabled:
                    probe.count("pool.workers", self.jobs)
            chunk = self.chunk_size or max(1, -(-len(items) // self.jobs))
            results = list(self._executor.map(fn, items, chunksize=chunk))
            if probe.enabled:
                probe.count("pool.tasks", len(items))
                probe.count("pool.chunks", _chunk_count(len(items), chunk))
        return results


def parallel_map(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
) -> list[R]:
    """One-shot order-preserving map over ``jobs`` worker processes.

    The workhorse behind ``--jobs``: ``jobs <= 1`` (or a single task)
    degrades to an in-process loop with identical results, so callers
    need no serial/parallel branching of their own.  ``fn`` must be a
    module-level function and tasks/results picklable when ``jobs > 1``.
    """
    items = list(tasks)
    jobs = min(int(jobs), len(items))
    with SearchPool(jobs, chunk_size) as pool:
        return pool.map(fn, items)
