"""Process-parallel search fabric: deterministic fan-out over worker pools.

Every search engine in this repository — the order annealer
(:mod:`repro.graph.search`), the partition refiner
(:mod:`repro.parallel.refine`), the capacity-sweep replays
(:mod:`repro.trace.replay`) — is a pure function of ``(inputs, seed)``.
That makes them trivially fan-out-able: run K independent instances in
worker processes, merge with a deterministic reduction, and the result is
bit-identical to running the same K instances serially in index order.
This package supplies the one shared mechanism all of them use:

* :func:`repro.perf.pool.task_seed` — SHA-256-derived per-task RNG seeds,
  disjoint across task indices, with ``task_seed(seed, 0) == seed`` so a
  single-task fan-out reproduces the classic serial run bit for bit;
* :func:`repro.perf.pool.parallel_map` — an order-preserving map over a
  ``ProcessPoolExecutor`` with chunking, probe counter/timer integration
  (``pool.{tasks,workers,chunks}``, ``pool.map``), and an in-process
  serial fallback at ``jobs <= 1`` that touches no multiprocessing
  machinery at all;
* :class:`repro.perf.pool.SearchPool` — the reusable form for call sites
  that fan out repeatedly (one executor, many maps).

Task functions must be module-level (picklable); results are merged in
task order, never completion order, so parallelism degree changes
wall-clock only — every merged result is independent of ``jobs``.
"""

from .pool import SearchPool, parallel_map, task_seed

__all__ = ["SearchPool", "parallel_map", "task_seed"]
