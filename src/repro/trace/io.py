"""On-disk formats for compiled traces and recorded schedules.

Both containers are a single ``.npz`` file (numpy's zip format, compressed)
holding the payload arrays plus one ``header`` entry — a JSON string with
the kind tag, format version, matrix names/shapes and, for schedules, the
structural step records.  The split keeps the bulk data binary and compact
while the metadata stays greppable (``python -m repro trace info``).

Two kinds:

``trace``
    the arrays of a :class:`~repro.trace.compiled.CompiledTrace`.  Enough
    to replay (LRU/Belady at any capacity) and to re-derive every count,
    but op objects are gone — ``ops`` is ``None`` after loading.
``schedule``
    a full :class:`~repro.sched.schedule.Schedule`: every load/evict step
    with its region, every compute step as the op class name plus its
    constructor parameters (index arrays packed into one shared int64
    payload).  Loading reconstructs real op objects against a shape-only
    machine, so a loaded schedule replays to bit-identical numerics —
    recorded runs can be shipped to workers or cached between sweeps.
"""

from __future__ import annotations

import json
import os
import threading
from typing import IO, Any

import numpy as np

from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.regions import Region
from ..sched.ops import (
    CholFactorResident,
    ComputeOp,
    GemmOuterUpdate,
    LuFactorResident,
    OuterColsUpdate,
    TriangleCrossUpdate,
    TriangleUpdate,
    TrsmSolveStep,
    UnitLowerSolveStep,
    UpperSolveStep,
)
from ..sched.schedule import ComputeStep, EvictStep, LoadStep, Schedule, Step
from .compiled import CompiledTrace

FORMAT_VERSION = 1

#: op class -> (string fields, index-array fields, scalar fields).  Scalar
#: fields round-trip through JSON (ints, floats, bools); index arrays are
#: packed into the shared ``index_data`` payload.  Field names equal both
#: the attribute and the constructor-keyword names.
_OP_SPECS: dict[type, tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]] = {
    OuterColsUpdate: (("c", "a", "b"), ("I", "J"), ("ka", "kb", "sign")),
    TriangleUpdate: (("c", "a"), ("R",), ("k", "sign", "include_diagonal")),
    TriangleCrossUpdate: (("c", "a", "b"), ("R",), ("k", "sign", "include_diagonal")),
    GemmOuterUpdate: (("c", "a", "b"), ("I", "J"), ("k", "sign")),
    TrsmSolveStep: (("x", "l"), ("I", "Jcols"), ("t",)),
    UpperSolveStep: (("x", "u"), ("I", "Jcols"), ("t",)),
    UnitLowerSolveStep: (("x", "l"), ("Irows", "J"), ("t",)),
    CholFactorResident: (("a",), ("R",), ()),
    LuFactorResident: (("a",), ("R",), ()),
}
_OP_BY_NAME = {cls.name: cls for cls in _OP_SPECS}


def _write_npz(path: str | os.PathLike | IO[bytes], header: dict, arrays: dict) -> None:
    payload = dict(header=np.asarray(json.dumps(header)), **arrays)
    if not isinstance(path, (str, os.PathLike)):
        np.savez_compressed(path, **payload)
        return
    # Atomic for real paths: write a sibling temp file, then os.replace —
    # an interrupted save can never leave a torn container at the
    # destination (the serve store's whole consistency story rests on it).
    # numpy appends ".npz" to extension-less names; normalize the
    # destination the same way so the rename lands where savez would have.
    dest = os.fspath(path)
    if not dest.endswith(".npz"):
        dest += ".npz"
    tmp = f"{dest}.{os.getpid()}.{threading.get_ident()}.tmp.npz"
    try:
        np.savez_compressed(tmp, **payload)
        os.replace(tmp, dest)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _read_npz(
    path: str | os.PathLike | IO[bytes], kind: str
) -> tuple[dict, dict[str, Any]]:
    with np.load(path, allow_pickle=False) as npz:
        try:
            header = json.loads(str(npz["header"][()]))
        except KeyError:
            raise ConfigurationError(
                f"{path}: not a repro {kind} file (no header)"
            ) from None
        if header.get("kind") != kind:
            raise ConfigurationError(
                f"{path}: expected a {kind!r} file, found {header.get('kind')!r}"
            )
        if header.get("version") != FORMAT_VERSION:
            raise ConfigurationError(
                f"{path}: unsupported {kind} format version {header.get('version')!r}"
            )
        # Materialize before the file closes (NpzFile reads lazily).
        arrays = {name: npz[name] for name in npz.files if name != "header"}
    return header, arrays


def file_kind(path: str | os.PathLike) -> str:
    """The kind tag (``"trace"`` or ``"schedule"``) of an ``.npz`` container."""
    with np.load(path, allow_pickle=False) as npz:
        try:
            return json.loads(str(npz["header"][()])).get("kind", "?")
        except KeyError:
            raise ConfigurationError(
                f"{path}: not a repro trace/schedule file"
            ) from None


# ---------------------------------------------------------------------- #
# compiled traces
# ---------------------------------------------------------------------- #
def save_trace(trace: CompiledTrace, path: str | os.PathLike | IO[bytes]) -> None:
    """Write a compiled trace as a compact ``.npz`` + JSON-header container."""
    header = {
        "kind": "trace",
        "version": FORMAT_VERSION,
        "matrices": list(trace.matrices),
        "shapes": {name: list(shape) for name, shape in trace.shapes.items()},
        "n_accesses": trace.n_accesses,
        "n_ops": trace.n_ops,
        "n_elements": trace.n_elements,
    }
    _write_npz(
        path,
        header,
        dict(
            elem_ids=trace.elem_ids,
            is_write=np.packbits(trace.is_write),
            op_starts=trace.op_starts,
            op_read_ends=trace.op_read_ends,
            key_matrix=trace.key_matrix,
            key_flat=trace.key_flat,
        ),
    )


def load_trace(path: str | os.PathLike | IO[bytes]) -> CompiledTrace:
    """Load a trace written by :func:`save_trace` (``ops`` is ``None``)."""
    header, npz = _read_npz(path, "trace")
    n = int(header["n_accesses"])
    return CompiledTrace(
        matrices=tuple(header["matrices"]),
        shapes={name: (int(r), int(c)) for name, (r, c) in header["shapes"].items()},
        elem_ids=npz["elem_ids"],
        is_write=np.unpackbits(npz["is_write"], count=n).astype(bool),
        op_starts=npz["op_starts"],
        op_read_ends=npz["op_read_ends"],
        key_matrix=npz["key_matrix"],
        key_flat=npz["key_flat"],
        ops=None,
    )


# ---------------------------------------------------------------------- #
# full schedules
# ---------------------------------------------------------------------- #
def _op_record(op: ComputeOp, chunks: list[np.ndarray], offset: int) -> tuple[dict, int]:
    spec = _OP_SPECS.get(type(op))
    if spec is None:
        raise ConfigurationError(
            f"cannot serialize compute op of type {type(op).__name__}"
        )
    strs, arrays, scalars = spec
    params: dict[str, Any] = {f: getattr(op, f) for f in strs}
    for f in scalars:
        value = getattr(op, f)
        params[f] = bool(value) if isinstance(value, bool) else value
    spans = {}
    for f in arrays:
        arr = np.asarray(getattr(op, f), dtype=np.int64).ravel()
        chunks.append(arr)
        spans[f] = [offset, offset + int(arr.size)]
        offset += int(arr.size)
    return {"t": "C", "op": type(op).name, "p": params, "i": spans}, offset


def save_schedule(schedule: Schedule, path: str | os.PathLike | IO[bytes]) -> None:
    """Write a full schedule (loads, evicts, reconstructible compute ops)."""
    chunks: list[np.ndarray] = []
    offset = 0
    steps: list[dict] = []
    for step in schedule.steps:
        if isinstance(step, (LoadStep, EvictStep)):
            flat = step.region.flat
            chunks.append(flat)
            rec: dict[str, Any] = {
                "t": "E" if isinstance(step, EvictStep) else "L",
                "m": step.region.matrix,
                "i": [offset, offset + int(flat.size)],
            }
            if isinstance(step, EvictStep):
                rec["wb"] = bool(step.writeback)
            offset += int(flat.size)
        elif isinstance(step, ComputeStep):
            rec, offset = _op_record(step.op, chunks, offset)
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown step type {type(step).__name__}")
        steps.append(rec)
    header = {
        "kind": "schedule",
        "version": FORMAT_VERSION,
        "shapes": {name: list(shape) for name, shape in schedule.shapes.items()},
        "steps": steps,
    }
    index_data = (
        np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
    )
    _write_npz(path, header, dict(index_data=index_data))


def _shape_machine(shapes: dict[str, tuple[int, int]]) -> TwoLevelMachine:
    """A counting-only machine whose sole job is shape-aware op rebuilding."""
    m = TwoLevelMachine(1, strict=False, numerics=False, check_residency=False)
    for name, (rows, cols) in shapes.items():
        m.add_matrix(name, np.zeros((rows, cols)))
    return m


def load_schedule(path: str | os.PathLike | IO[bytes]) -> Schedule:
    """Load a schedule written by :func:`save_schedule`.

    Compute ops are rebuilt as real op objects against a machine holding
    zero matrices of the recorded shapes, so the loaded schedule can be
    replayed (:func:`~repro.sched.schedule.replay_schedule`) on any machine
    with matching shapes and reproduces the original numerics bit for bit.
    """
    header, npz = _read_npz(path, "schedule")
    shapes = {name: (int(r), int(c)) for name, (r, c) in header["shapes"].items()}
    index_data = npz["index_data"]
    m = _shape_machine(shapes)
    steps: list[Step] = []
    for rec in header["steps"]:
        kind = rec["t"]
        if kind in ("L", "E"):
            start, end = rec["i"]
            region = Region(rec["m"], index_data[start:end])
            if kind == "L":
                steps.append(LoadStep(region))
            else:
                steps.append(EvictStep(region, writeback=bool(rec["wb"])))
        elif kind == "C":
            cls = _OP_BY_NAME.get(rec["op"])
            if cls is None:
                raise ConfigurationError(f"unknown compute op {rec['op']!r}")
            params = dict(rec["p"])
            for f, (start, end) in rec["i"].items():
                params[f] = index_data[start:end]
            steps.append(ComputeStep(cls(m, **params)))
        else:
            raise ConfigurationError(f"unknown step record {kind!r}")
    return Schedule(steps=steps, shapes=shapes)
