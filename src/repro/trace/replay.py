"""Array-based cache replays over a :class:`~repro.trace.compiled.CompiledTrace`.

Both replays simulate exactly the policies of the reference walkers
(:func:`repro.analysis.lru_replay.lru_replay_reference` and
:func:`repro.graph.policies.belady_replay_reference`) but run on the
compiled IR: element IDs are dense ints, residency/dirtiness live in flat
numpy arrays, and — the key observation — *hits never change the cache
contents*, only misses do.  The engine therefore scans ahead for the next
miss with one vectorized residency gather per window (chunked boundary
scanning), bulk-applies whole hit runs (dirty marking, recency/next-use
stamps, one heap entry per element per run), and only drops to per-access
Python for the misses themselves.  On reuse-friendly schedules this is one
to two orders of magnitude faster than the tuple-per-touch walkers
(benchmark E13); on thrashing schedules the scan window shrinks adaptively
and the engine degrades to a plain int loop that still beats the
tuple/dict paths.

Priorities are packed into single ints (``stamp << id_bits | elem``), with
lazy invalidation against the live stamp arrays:

* LRU evicts the valid entry with the smallest last-access position;
* Belady/MIN evicts the valid entry with the largest next use.  Next-use
  positions are unique, so distances can only tie at "never used again";
  among those the packed dirty bit prefers clean victims — and because a
  never-reused element's dirty status is final by its last access (dirty
  only changes when an element is accessed), the bit packed at push time
  provably equals the live status whenever the tie-break can fire.

Store accounting matches the references: dirty evictions count as stores
(``evict_stores``) and dirty elements still resident at the end are
flushed; ``stores`` is the sum of both.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..obs.probe import get_probe
from .compiled import CompiledTrace

#: Initial / maximum width of the miss-scan window (adaptively resized).
_MIN_WINDOW = 64
_MAX_WINDOW = 8192


@dataclass(frozen=True)
class LruReplayResult:
    """Outcome of replaying a schedule's compute ops under LRU."""

    capacity: int
    loads: int           # cold + capacity misses (elements moved in)
    stores: int          # dirty evictions + dirty elements at the end
    n_accesses: int      # total element touches
    distinct: int        # distinct elements touched (cold-miss floor)
    evict_stores: int = 0  # the eviction-writeback part of ``stores``

    @property
    def q(self) -> int:
        return self.loads

    @property
    def miss_rate(self) -> float:
        return self.loads / self.n_accesses if self.n_accesses else 0.0


class BeladyReplayResult(LruReplayResult):
    """Outcome of replaying an op order under MIN-optimal replacement.

    Same shape and conventions as the LRU result (loads, stores,
    n_accesses, distinct, ``q``, ``miss_rate``) — the policies differ, the
    accounting does not.
    """


#: Hit-run length below which vectorized bulk handling is not worth the
#: numpy call overhead, and above which the scalar mode hands back to the
#: vectorized scanner.  Callers may override per replay via the
#: ``scalar_run=`` keyword (``0`` forces the vector mode everywhere, a
#: value above the trace length forces the scalar loop) — the two modes
#: maintain identical state, so every threshold yields identical counts.
_SCALAR_RUN = 32


def _replay(
    trace: CompiledTrace,
    capacity: int,
    belady: bool,
    *,
    scalar_run: int = _SCALAR_RUN,
) -> tuple[int, int, int]:
    """Shared adaptive engine; returns (loads, evict_stores, flush_stores).

    Two modes, switched by observed hit-run length:

    * **vector**: gather residency for a doubling window, bulk-apply the
      whole hit run (dirty marking, one stamp/heap entry per element via
      reverse ``np.unique``), drop to per-access work only at the miss;
    * **scalar**: a tight Python-int loop over pre-extracted lists — the
      regime where misses are dense and per-window numpy overhead would
      dominate (thrashing capacities).

    Both modes maintain identical state, so switching is free: residency
    and dirtiness live in ``bytearray``s wrapped zero-copy by numpy views
    (scalar reads are plain-Python fast, gathers are vectorized), stamps
    (last-access position for LRU, current next-use for Belady) in an
    int64 array, and the eviction heap holds packed ints
    ``priority << id_bits | elem`` with lazy invalidation against the
    stamp array.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    n = trace.n_accesses
    ids = trace.elem_ids
    n_elem = trace.n_elements

    id_bits = max(1, n_elem - 1).bit_length()
    id_mask = (1 << id_bits) - 1
    shift = id_bits + 1 if belady else id_bits
    cached_b = bytearray(n_elem)
    dirty_b = bytearray(n_elem)
    cached = np.frombuffer(cached_b, dtype=np.uint8)  # zero-copy views
    dirty = np.frombuffer(dirty_b, dtype=np.uint8)
    stamp = np.full(n_elem, -1, dtype=np.int64)
    heap: list[int] = []
    # Belady fast path: resident elements that are *never used again* are
    # always the furthest-next-use victims, mutually tied, and their dirty
    # status is final by their last access (dirty only changes when an
    # element is accessed) — so they live in two plain stacks instead of
    # the heap, clean ones preferred, no invalidation needed.
    never_clean: list[int] = []
    never_dirty: list[int] = []
    # Bulk-mode entries avoid per-entry heap pushes entirely: each hit run
    # contributes one *sorted* array (log-structured levels, geometrically
    # merged), and the rare eviction pops scan the level heads.  Scalar-
    # mode entries still go through the Python heap.
    levels: list[np.ndarray] = []
    level_ptrs: list[int] = []
    heappush, heappop = heapq.heappush, heapq.heappop
    loads = evict_stores = resident = 0
    evictions = windows = 0  # engine telemetry; emitted to the probe once

    def push_level(entries: np.ndarray) -> None:
        levels.append(np.sort(entries))
        level_ptrs.append(0)
        while (
            len(levels) >= 2
            and levels[-1].size - level_ptrs[-1]
            >= levels[-2].size - level_ptrs[-2]
        ):
            b, bp = levels.pop(), level_ptrs.pop()
            a, ap = levels.pop(), level_ptrs.pop()
            levels.append(np.sort(np.concatenate([a[ap:], b[bp:]])))
            level_ptrs.append(0)

    def pop_entry() -> int:
        """Smallest pending entry across the heap and the sorted levels."""
        i = 0
        while i < len(levels):  # drop exhausted levels
            if level_ptrs[i] >= levels[i].size:
                del levels[i], level_ptrs[i]
            else:
                i += 1
        best_level = -1
        best = heap[0] if heap else None
        for i in range(len(levels)):
            value = int(levels[i][level_ptrs[i]])
            if best is None or value < best:
                best, best_level = value, i
        if best_level < 0:
            return heappop(heap)
        level_ptrs[best_level] += 1
        return best

    # Scalar-mode working copies: plain Python lists beat numpy scalar
    # indexing by ~5x in tight loops.
    ids_l = ids.tolist()
    writes_l = trace.is_write.tolist()
    nxt = trace.next_use() if belady else None
    nxt_l = None
    if belady:
        nxt_l = trace._replay_cache.get("next_use_list")
        if nxt_l is None:
            nxt_l = nxt.tolist()
            trace._replay_cache["next_use_list"] = nxt_l

    def handle_miss(p: int, e: int) -> None:
        nonlocal loads, evict_stores, resident, evictions
        while resident >= capacity:
            if never_clean:
                victim = never_clean.pop()
                cached_b[victim] = 0
                resident -= 1
                evictions += 1
                continue
            if never_dirty:
                victim = never_dirty.pop()
                cached_b[victim] = 0
                dirty_b[victim] = 0
                resident -= 1
                evict_stores += 1
                evictions += 1
                continue
            entry = pop_entry() if levels else heappop(heap)
            victim = entry & id_mask
            if not cached_b[victim]:
                continue
            sp = (n - (entry >> shift)) if belady else entry >> shift
            if stamp[victim] != sp:
                continue  # superseded by a later access of the same element
            cached_b[victim] = 0
            resident -= 1
            evictions += 1
            if dirty_b[victim]:
                evict_stores += 1
                dirty_b[victim] = 0
        write = writes_l[p]
        cached_b[e] = 1
        dirty_b[e] = 1 if write else 0
        loads += 1
        resident += 1
        if belady:
            nu = nxt_l[p]
            stamp[e] = nu
            if nu == n:
                (never_dirty if write else never_clean).append(e)
            else:
                heappush(heap, ((n - nu) << shift) | (write << id_bits) | e)
        else:
            stamp[e] = p
            heappush(heap, (p << shift) | e)

    pos = 0
    window = _MIN_WINDOW
    scalar_mode = capacity < scalar_run  # tiny caches thrash by definition
    scalar_switches = 1 if scalar_mode else 0
    while pos < n:
        if scalar_mode:
            run = 0
            while pos < n:
                e = ids_l[pos]
                if cached_b[e]:
                    if writes_l[pos]:
                        dirty_b[e] = 1
                    if belady:
                        nu = nxt_l[pos]
                        stamp[e] = nu
                        if nu == n:
                            (never_dirty if dirty_b[e] else never_clean).append(e)
                        else:
                            heappush(
                                heap,
                                ((n - nu) << shift) | (dirty_b[e] << id_bits) | e,
                            )
                    else:
                        stamp[e] = pos
                        heappush(heap, (pos << shift) | e)
                    run += 1
                    if run >= 2 * scalar_run and capacity >= scalar_run:
                        pos += 1
                        scalar_mode = False
                        break
                else:
                    handle_miss(pos, e)
                    run = 0
                pos += 1
            continue

        stop = min(n, pos + window)
        windows += 1
        miss_rel = np.flatnonzero(cached[ids[pos:stop]] == 0)
        hits = int(miss_rel[0]) if miss_rel.size else stop - pos
        if hits:
            # Bulk-apply the hit run: dirty marking, then one stamp / heap
            # entry per distinct element (its last access in the run wins).
            sub = ids[pos : pos + hits]
            written = sub[trace.is_write[pos : pos + hits]]
            if written.size:
                dirty[written] = 1
            u, first_rev = np.unique(sub[::-1], return_index=True)
            last_abs = pos + (hits - 1 - first_rev)
            if belady:
                stamps = nxt[last_abs]
                stamp[u] = stamps
                finite = stamps < n
                if not finite.all():
                    gone = u[~finite]
                    gone_dirty = dirty[gone] != 0
                    never_dirty.extend(gone[gone_dirty].tolist())
                    never_clean.extend(gone[~gone_dirty].tolist())
                    u, stamps = u[finite], stamps[finite]
                entries = ((n - stamps) << shift) | (
                    dirty[u].astype(np.int64) << id_bits
                ) | u
                if entries.size:
                    push_level(entries)
            else:
                stamps = last_abs
                stamp[u] = stamps
                entries = (stamps << shift) | u
                for entry in entries.tolist():
                    heappush(heap, entry)
        if not miss_rel.size:
            pos = stop
            window = min(_MAX_WINDOW, window * 2)
            continue
        if hits < scalar_run:
            scalar_mode = True  # misses are dense: numpy overhead loses
            scalar_switches += 1
            window = _MIN_WINDOW
        p = pos + hits
        # Batch a run of consecutive misses when the cache can absorb it
        # without evicting: no victim choices are made, so the bulk insert
        # is trivially equivalent to the per-access walk.  (This is the
        # dominant miss pattern once capacity covers the working set:
        # whole tiles/blocks cold-load together.)
        gaps = np.flatnonzero(np.diff(miss_rel) != 1)
        run = int(gaps[0]) + 1 if gaps.size else int(miss_rel.size)
        run = min(run, capacity - resident)
        if run >= 2:
            run_ids = ids[p : p + run]
            order_r = np.argsort(run_ids, kind="stable")
            sorted_r = run_ids[order_r]
            dup = np.flatnonzero(sorted_r[1:] == sorted_r[:-1])
            if dup.size:  # batch must stop before an element repeats
                run = int(order_r[dup + 1].min())
        if run >= 2:
            run_ids = ids[p : p + run]
            run_writes = trace.is_write[p : p + run]
            cached[run_ids] = 1
            dirty[run_ids] = run_writes
            loads += run
            resident += run
            if belady:
                run_next = nxt[p : p + run]
                stamp[run_ids] = run_next
                finite = run_next < n
                if not finite.all():
                    gone = run_ids[~finite]
                    gone_dirty = run_writes[~finite]
                    never_dirty.extend(gone[gone_dirty].tolist())
                    never_clean.extend(gone[~gone_dirty].tolist())
                entries = ((n - run_next[finite]) << shift) | (
                    run_writes[finite].astype(np.int64) << id_bits
                ) | run_ids[finite]
                if entries.size:
                    push_level(entries)
            else:
                positions = np.arange(p, p + run, dtype=np.int64)
                stamp[run_ids] = positions
                for entry in ((positions << shift) | run_ids).tolist():
                    heappush(heap, entry)
            pos = p + run
            continue
        handle_miss(p, ids_l[p])
        pos = p + 1

    probe = get_probe()
    if probe.enabled:
        prefix = "replay.belady" if belady else "replay.lru"
        probe.count(f"{prefix}.evictions", evictions)
        probe.count(f"{prefix}.windows", windows)
        probe.count(f"{prefix}.scalar_switches", scalar_switches)
    return loads, evict_stores, int(dirty.sum())


#: Base level of the reuse-distance merge tree: prefixes shorter than
#: ``2 ** _RANK_BASE_BITS`` are counted with shifted vector compares,
#: longer spans with sorted aligned blocks + binary search.
_RANK_BASE_BITS = 5


def _reuse_distances(trace: CompiledTrace) -> np.ndarray:
    """LRU stack distance of every access (capacity-independent), -1 if cold.

    ``dist[p]`` is the number of distinct *other* elements touched since
    the previous access of ``elem_ids[p]`` — the access is an LRU hit at
    capacity ``C`` iff ``0 <= dist[p] < C`` (the inclusion property, so one
    pass serves every capacity).  Let ``prev`` be the previous-access
    links; since ``prev[x] < x`` always, ::

        dist[p] = #{prev[p] < x < p : prev[x] <= prev[p]}
                = #{x < p : prev[x] <= prev[p]}  -  (prev[p] + 1)

    (every ``x <= prev[p]`` qualifies trivially), which turns the window
    count into a pure dominance count.  That is evaluated with an
    aligned-block merge tree: the prefix ``[0, p)`` decomposes into
    ``O(log n)`` power-of-two blocks; per level one vectorized ``np.sort``
    of block-major keys and one batched ``np.searchsorted`` answer all
    queries, with the sub-``2**_RANK_BASE_BITS`` tail handled by shifted
    elementwise compares.
    """
    cached = trace._replay_cache.get("lru_dist")
    if cached is not None:
        return cached
    n = trace.n_accesses
    prev = trace.prev_access()
    cnt = np.zeros(n, dtype=np.int64)
    pos = np.arange(n, dtype=np.int64)
    base = 1 << _RANK_BASE_BITS
    for j in range(1, min(base, n)):
        cnt[j:] += (prev[:-j] <= prev[j:]) & ((pos[j:] & (base - 1)) >= j)
    if n > base:
        span = np.int64(n + 2)
        shifted = prev + 1  # -1 (cold) becomes 0: still <= every real link
        for k in range(_RANK_BASE_BITS, int(n - 1).bit_length()):
            keys = (pos >> k) * span + shifted
            keys_sorted = np.sort(keys)
            qmask = ((pos >> k) & 1) == 1
            qb = (pos[qmask] >> k) - 1  # the left sibling block (even index)
            loc = np.searchsorted(
                keys_sorted, qb * span + shifted[qmask], side="right"
            )
            cnt[qmask] += loc - (qb << k)
    dist = cnt - prev - 1
    dist[prev < 0] = -1
    trace._replay_cache["lru_dist"] = dist
    return dist


def _element_runs(trace: CompiledTrace):
    """(order, writes_sorted, run_lengths) with accesses grouped by element."""
    cached = trace._replay_cache.get("elem_runs")
    if cached is not None:
        return cached
    order = np.argsort(trace.elem_ids, kind="stable")
    writes_sorted = trace.is_write[order]
    run_lengths = np.bincount(trace.elem_ids, minlength=trace.n_elements)
    artifacts = (order, writes_sorted, run_lengths)
    trace._replay_cache["elem_runs"] = artifacts
    return artifacts


def _distinct_count(sorted_values: np.ndarray) -> int:
    """Number of distinct entries of a non-decreasing array."""
    if not sorted_values.size:
        return 0
    return 1 + int((np.diff(sorted_values) != 0).sum())


def _lru_counts_from_distances(trace: CompiledTrace, capacity: int) -> tuple[int, int, int]:
    """(loads, evict_stores, flush_stores) from the reuse-distance artifacts.

    Stores need no simulation either: every miss opens a *residency
    segment* of its element, each segment containing a write costs exactly
    one store, and the store is a final flush (rather than an eviction
    writeback) iff the segment is the element's last and fewer than
    ``capacity`` distinct elements are touched after the element's final
    access (the inclusion property again, forward in time).
    """
    dist = _reuse_distances(trace)
    miss = (dist < 0) | (dist >= capacity)
    loads = int(miss.sum())
    order, writes_sorted, run_lengths = _element_runs(trace)
    # Segment IDs: cumulative misses in element-grouped order.  Every run
    # starts with its element's cold miss, so IDs never straddle elements.
    seg = np.cumsum(miss[order])
    stores = _distinct_count(seg[writes_sorted])
    if not stores:
        return loads, 0, 0
    # Flush split: the element's last access (end of its run) survives to
    # the end iff the number of distinct elements accessed after it —
    # i.e. *final* accesses at later positions — stays below capacity.
    run_ends = np.cumsum(run_lengths) - 1
    last_positions = order[run_ends]
    is_final = trace.next_use() == trace.n_accesses
    finals_at_or_after = np.cumsum(is_final[::-1])[::-1]
    survives = (finals_at_or_after[last_positions] - 1) < capacity
    # A write access belongs to a flushed segment iff its segment is its
    # element's last one and the element survives; -1 marks "none".
    flushable_seg = np.repeat(np.where(survives, seg[run_ends], -1), run_lengths)
    flush = _distinct_count(seg[writes_sorted & (seg == flushable_seg)])
    return loads, stores - flush, flush


# --------------------------------------------------------------------- #
# one-pass Belady sweeps: the grouped OPT stack
# --------------------------------------------------------------------- #
#
# Belady/MIN obeys the same inclusion property as LRU: the cache of
# capacity C is always the top C entries of one priority stack (Mattson's
# OPT stack, ordered by "will be evicted latest"), so the access is a hit
# at capacity C iff its current stack depth is < C.  Simulating the full
# stack exactly costs O(depth) per access, but a capacity *sweep* never
# needs exact depths — only which two sweep capacities the depth falls
# between.  So the stack is kept *partitioned at the sweep capacities*:
# group i holds the elements at depths [caps[i-1], caps[i]) as a bag with
# max-by-next-use extraction (a lazy-deletion heap of packed
# ``(n - next_use) << id_bits | elem`` ints, exactly the engine's
# encoding).  One access then touches at most ``len(caps)`` groups:
#
# * the accessed element jumps to depth 0 (insert into group 0);
# * every full group above its old group overflows by one, and the
#   element leaving a group is always its *furthest-next-use* member —
#   the OPT stack's defining property — possibly the element that just
#   cascaded in (then the group's membership is unchanged);
# * the chain stops in the old group (a hit: net membership change zero)
#   or below the last group (a miss deeper than the largest sweep
#   capacity: the overflow is simply dropped — depths beyond
#   ``max(caps)`` can never influence the tracked prefix).
#
# Next-use stamps are unique except at "never used again" (= n), and
# those ties are *inert*: evicting one never-reused element versus
# another cannot change any later hit/miss (Belady's optimality is
# tie-break independent), so any deterministic pop order yields the
# engine's exact counts — pinned by the cross-checks in the test suite.


def _canonical_caps(capacities) -> tuple[int, ...]:
    caps = sorted({int(c) for c in capacities})
    if not caps:
        raise ConfigurationError("capacity sweep needs at least one capacity")
    if caps[0] < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {caps[0]}")
    return tuple(caps)


def _belady_buckets(trace: CompiledTrace, caps: tuple[int, ...]) -> np.ndarray:
    """Per-access OPT hit buckets against the (canonical) capacity grid.

    ``bucket[p]`` is the index of the smallest capacity in ``caps`` at
    which access ``p`` is a Belady hit, or ``len(caps)`` if it misses at
    every sweep capacity (cold, or deeper than ``max(caps)``).  One pass,
    cached per grid — the Belady analogue of :func:`_reuse_distances`.
    """
    key = ("belady_buckets", caps)
    cached = trace._replay_cache.get(key)
    if cached is not None:
        return cached
    n = trace.n_accesses
    n_elem = trace.n_elements
    m = len(caps)
    ids_l = trace.elem_ids.tolist()
    nxt_l = trace._replay_cache.get("next_use_list")
    if nxt_l is None:
        nxt_l = trace.next_use().tolist()
        trace._replay_cache["next_use_list"] = nxt_l
    id_bits = max(1, n_elem - 1).bit_length()
    id_mask = (1 << id_bits) - 1
    heappush, heappop = heapq.heappush, heapq.heappop

    heappushpop = heapq.heappushpop

    group_of = [-1] * n_elem     # current group per element (-1: untracked)
    nu_cur = [0] * n_elem        # next-use stamp the element entered with
    heaps: list[list[int]] = [[] for _ in range(m)]
    sizes = [0] * m
    caps_sz = [caps[0]] + [caps[i] - caps[i - 1] for i in range(1, m)]
    fill = 0  # first group that is not full yet (fills monotonically)
    bucket = [0] * n

    def extract_max(j: int) -> tuple[int, int]:
        """Pop group ``j``'s valid furthest-next-use (entry, element).

        Pure lazy deletion: every stale entry (an element re-accessed or
        moved since its push) is popped at most once, so the waded-through
        garbage is amortized O(1) per push; heap memory is O(accesses)
        ints — the same order as the trace arrays themselves.
        """
        h = heaps[j]
        while True:
            entry = heappop(h)
            e = entry & id_mask
            if group_of[e] == j and nu_cur[e] == n - (entry >> id_bits):
                return entry, e

    # Two fast paths keep the cascade off the heaps almost always:
    #
    # * *peek pass-through*: if the carry is already the furthest-next-use
    #   member of the next group, push-then-extract would hand it right
    #   back — compare against the group's (stale-cleared) top instead and
    #   let it fall through untouched;
    # * *never-again sink*: a carry with no future use (packed entry
    #   ``<= id_mask``) is at least tied for furthest in *every* group and
    #   ties are inert, so it passes every full group and lands directly
    #   in the first non-full one — ``fill`` — or drops off the end.

    def sink_never_again(carry_entry: int, carry_e: int) -> None:
        nonlocal fill
        if fill >= m:
            group_of[carry_e] = -1  # fell below max(caps): drop
            return
        group_of[carry_e] = fill
        heappush(heaps[fill], carry_entry)
        sizes[fill] += 1
        if sizes[fill] == caps_sz[fill]:
            fill += 1

    def peek_valid_top(j: int) -> int:
        h = heaps[j]
        top = h[0]
        while (
            group_of[top & id_mask] != j
            or nu_cur[top & id_mask] != n - (top >> id_bits)
        ):
            heappop(h)
            top = h[0]
        return top

    for p in range(n):
        e = ids_l[p]
        nu = nxt_l[p]
        g = group_of[e]
        if g == 0:
            # Hit in the top group: membership unchanged, refresh the
            # stamp (the old heap entry goes stale via ``nu_cur``).
            nu_cur[e] = nu
            heappush(heaps[0], ((n - nu) << id_bits) | e)
            continue  # bucket[p] stays 0
        if g < 0:
            bucket[p] = m
            nu_cur[e] = nu
            group_of[e] = 0
            if fill == 0:  # stack still growing: nothing overflows
                sizes[0] += 1
                heappush(heaps[0], ((n - nu) << id_bits) | e)
                if sizes[0] == caps_sz[0]:
                    fill = 1
                continue
            # group 0 full: its furthest member cascades (extracted before
            # the accessed element enters — it never carries at its own
            # access), so group 0's size is back to full immediately
            carry_entry, carry_e = extract_max(0)
            heappush(heaps[0], ((n - nu) << id_bits) | e)
            if carry_entry <= id_mask:
                sink_never_again(carry_entry, carry_e)
                continue
            j = 1
            while True:
                if j == m:
                    group_of[carry_e] = -1  # fell below max(caps): drop
                    break
                if sizes[j] < caps_sz[j]:  # the hole: j == fill
                    group_of[carry_e] = j
                    heappush(heaps[j], carry_entry)
                    sizes[j] += 1
                    if sizes[j] == caps_sz[j]:
                        fill = j + 1
                    break
                if carry_entry < peek_valid_top(j):
                    j += 1  # already the furthest member: pass through
                    continue
                group_of[carry_e] = j
                carry_entry = heappushpop(heaps[j], carry_entry)
                carry_e = carry_entry & id_mask
                if carry_entry <= id_mask:
                    sink_never_again(carry_entry, carry_e)
                    break
                j += 1
        else:
            bucket[p] = g
            # Hit in group g: every group above is full; each passes its
            # furthest-next-use member down, and group g absorbs the last
            # carry in exchange for the accessed element.
            carry_entry, carry_e = extract_max(0)
            nu_cur[e] = nu
            group_of[e] = 0
            heappush(heaps[0], ((n - nu) << id_bits) | e)
            j = 1
            while j < g and carry_entry > id_mask:
                if carry_entry < peek_valid_top(j):
                    j += 1  # already the furthest member: pass through
                    continue
                group_of[carry_e] = j
                carry_entry = heappushpop(heaps[j], carry_entry)
                carry_e = carry_entry & id_mask
                j += 1
            # a never-again carry passes the remaining groups (tied for
            # furthest everywhere, ties inert) and lands in the hole the
            # accessed element left behind
            group_of[carry_e] = g
            heappush(heaps[g], carry_entry)

    out = np.asarray(bucket, dtype=np.int64)
    trace._replay_cache[key] = out
    return out


def _bucket_grid_for(trace: CompiledTrace, capacity: int):
    """(caps, bucket, index) of a cached grid containing ``capacity``.

    The quantized buckets are exact *at grid capacities*, so any cached
    sweep that included this capacity serves it; otherwise a one-capacity
    grid is computed (and cached — repeated single-capacity distance
    replays still pay the stack pass only once each).
    """
    for key, cached in trace._replay_cache.items():
        if isinstance(key, tuple) and key[0] == "belady_buckets" and capacity in key[1]:
            return key[1], cached, key[1].index(capacity)
    caps = (int(capacity),)
    return caps, _belady_buckets(trace, caps), 0


def _belady_counts_from_buckets(
    trace: CompiledTrace, bucket: np.ndarray, caps: tuple[int, ...], index: int
) -> tuple[int, int, int]:
    """(loads, evict_stores, flush_stores) at capacity ``caps[index]``.

    The miss mask is ``bucket > index``; stores reuse the LRU machinery
    (write-containing residency segments are policy-independent).  The
    flush/evict split needs one more fact: the engine prefers never-
    used-again victims, clean before dirty, over the heap.  Each
    eviction therefore pops the clean pool, then the dirty pool, then
    the heap — and because only *counts* matter (pool members are
    interchangeable: evicting one never-reused element vs another never
    changes later behavior, and every dirty-pool pop costs exactly one
    writeback), the pools reduce to two clipped counter walks.  A pool
    pop fails exactly where the walk ``(pushes - evictions)`` reaches a
    new running minimum below zero (one clip per unit of descent, and
    only evictions descend); clean-pool clips cascade into the dirty
    walk, dirty-pool clips continue to the heap.  Dirty elements still
    pooled at the end are the final flush.
    """
    n = trace.n_accesses
    capacity = caps[index]
    miss = bucket > index
    loads = int(miss.sum())
    order, writes_sorted, run_lengths = _element_runs(trace)
    seg = np.cumsum(miss[order])
    stores = _distinct_count(seg[writes_sorted])
    if not stores:
        return loads, 0, 0
    # Which elements end dirty-resident *if never evicted after their
    # final access*: their last residency segment contains a write.
    run_ends = np.cumsum(run_lengths) - 1
    final_seg = np.repeat(seg[run_ends], run_lengths)
    dirty_in_final = writes_sorted & (seg == final_seg)
    elem_sorted = trace.elem_ids[order]
    dirty_final = (
        np.bincount(elem_sorted[dirty_in_final], minlength=trace.n_elements) > 0
    )
    total_dirty = int(dirty_final.sum())
    rank = np.cumsum(miss)
    ev = miss & (rank > capacity)  # one eviction per miss once full
    if not ev.any():
        return loads, stores - total_dirty, total_dirty
    nxt = trace.next_use()
    is_final = nxt == n
    df_at = np.zeros(n, dtype=bool)
    df_at[is_final] = dirty_final[trace.elem_ids[is_final]]
    clean_push = is_final & ~df_at  # pool entries: clean finals ...
    dirty_push = df_at              # ... and dirty finals

    def _clips(push: np.ndarray, evs: np.ndarray) -> np.ndarray:
        # Walk value right after the eviction at p (evict before push).
        x = np.cumsum(push.astype(np.int64) - evs.astype(np.int64)) - push
        runmin = np.minimum.accumulate(x)
        newmin = np.empty(n, dtype=bool)
        newmin[0] = True
        newmin[1:] = runmin[1:] < runmin[:-1]
        return evs & newmin & (x < 0)

    clean_miss = _clips(clean_push, ev)          # clean pool was empty
    dirty_miss = _clips(dirty_push, clean_miss)  # dirty pool empty too
    dirty_pops = int(clean_miss.sum()) - int(dirty_miss.sum())
    flush = total_dirty - dirty_pops
    return loads, stores - flush, flush


def lru_replay_trace(
    trace: CompiledTrace,
    capacity: int,
    *,
    method: str = "distance",
    scalar_run: int = _SCALAR_RUN,
) -> LruReplayResult:
    """Array-based LRU replay of a compiled trace.

    ``method="distance"`` (default) computes capacity-independent reuse
    distances once per trace (cached), making every further capacity an
    O(n) pass — the natural shape for resource-augmentation sweeps.
    ``method="simulate"`` runs the adaptive chunked simulation instead
    (cheaper for a single replay of a heavily-thrashing trace; also an
    independent implementation the tests cross-check); ``scalar_run``
    overrides its scalar/vector switch threshold.
    """
    if method == "simulate":
        loads, evict_stores, flush = _replay(
            trace, capacity, belady=False, scalar_run=scalar_run
        )
    else:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        loads, evict_stores, flush = _lru_counts_from_distances(trace, capacity)
    probe = get_probe()
    if probe.enabled:
        probe.count("replay.lru.replays")
        probe.count("replay.lru.accesses", trace.n_accesses)
        probe.count("replay.lru.misses", loads)
        probe.count("replay.lru.hits", trace.n_accesses - loads)
        probe.count("replay.lru.stores", evict_stores + flush)
    return LruReplayResult(
        capacity=capacity,
        loads=loads,
        stores=evict_stores + flush,
        n_accesses=trace.n_accesses,
        distinct=trace.n_elements,
        evict_stores=evict_stores,
    )


def belady_replay_trace(
    trace: CompiledTrace,
    capacity: int,
    *,
    method: str = "simulate",
    scalar_run: int = _SCALAR_RUN,
) -> BeladyReplayResult:
    """Array-based Belady/MIN replay of a compiled trace.

    ``method="simulate"`` (default) runs the adaptive chunked engine —
    still the cheapest way to replay one capacity of a fresh trace.
    ``method="distance"`` classifies the access against a grouped OPT
    stack pass (:func:`_belady_buckets`, cached per capacity grid), the
    path :func:`sweep_replay_trace` amortizes across a whole sweep; both
    produce bit-identical counts.
    """
    if method == "simulate":
        loads, evict_stores, flush = _replay(
            trace, capacity, belady=True, scalar_run=scalar_run
        )
    elif method == "distance":
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        caps, bucket, index = _bucket_grid_for(trace, int(capacity))
        loads, evict_stores, flush = _belady_counts_from_buckets(
            trace, bucket, caps, index
        )
    else:
        raise ConfigurationError(
            f"unknown replay method {method!r}; choose 'simulate' or 'distance'"
        )
    probe = get_probe()
    if probe.enabled:
        probe.count("replay.belady.replays")
        probe.count("replay.belady.accesses", trace.n_accesses)
        probe.count("replay.belady.misses", loads)
        probe.count("replay.belady.hits", trace.n_accesses - loads)
        probe.count("replay.belady.stores", evict_stores + flush)
    return BeladyReplayResult(
        capacity=capacity,
        loads=loads,
        stores=evict_stores + flush,
        n_accesses=trace.n_accesses,
        distinct=trace.n_elements,
        evict_stores=evict_stores,
    )


def _sweep_task(task) -> list[tuple[int, int, int]]:
    """Worker for sharded sweeps: replay one chunk of capacities."""
    trace, policy, method, scalar_run, caps = task
    out = []
    for capacity in caps:
        loads, evict_stores, flush = _replay_counts(
            trace, capacity, policy, method, scalar_run
        )
        out.append((loads, evict_stores, flush))
    return out


def _replay_counts(
    trace: CompiledTrace, capacity: int, policy: str, method: str, scalar_run: int
) -> tuple[int, int, int]:
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    if method == "simulate":
        return _replay(
            trace, capacity, belady=policy == "belady", scalar_run=scalar_run
        )
    if policy == "belady":
        caps, bucket, index = _bucket_grid_for(trace, int(capacity))
        return _belady_counts_from_buckets(trace, bucket, caps, index)
    return _lru_counts_from_distances(trace, capacity)


def sweep_replay_trace(
    trace: CompiledTrace,
    capacities,
    *,
    policy: str = "belady",
    method: str = "distance",
    jobs: int = 1,
    scalar_run: int = _SCALAR_RUN,
) -> list[LruReplayResult]:
    """Replay one trace at many capacities; results in input order.

    ``method="distance"`` makes the whole sweep one pass: LRU classifies
    every capacity against the cached reuse distances, Belady against one
    grouped OPT stack pass over the *canonical grid* of all requested
    capacities (:func:`_belady_buckets`), leaving only an O(n) counting
    step per capacity.  ``method="simulate"`` runs the chunked engine per
    capacity — the independent implementation the sweep tests pin
    against.  ``jobs > 1`` shards the capacity list over a worker pool
    (:func:`repro.perf.pool.parallel_map`); the parent precomputes the
    shared artifacts so workers inherit them via the pickled trace, and
    the merge is in capacity order — results never depend on ``jobs``.
    Engine probe counters are emitted from the parent (worker probes are
    process-local and deliberately lost); a Belady distance sweep
    additionally counts ``replay.belady.sweep_one_pass``.
    """
    if policy not in ("lru", "belady"):
        raise ConfigurationError(
            f"unknown replay policy {policy!r}; choose 'lru' or 'belady'"
        )
    if method not in ("simulate", "distance"):
        raise ConfigurationError(
            f"unknown replay method {method!r}; choose 'simulate' or 'distance'"
        )
    caps = [int(c) for c in capacities]
    if not caps:
        return []
    probe = get_probe()
    if method == "distance":
        # Shared one-pass artifacts, computed (and cached) up front.
        if policy == "belady":
            _belady_buckets(trace, _canonical_caps(caps))
            if probe.enabled:
                probe.count("replay.belady.sweep_one_pass")
        else:
            _reuse_distances(trace)
        _element_runs(trace)
    jobs = min(int(jobs), len(caps))
    if jobs <= 1:
        counts = [_replay_counts(trace, c, policy, method, scalar_run) for c in caps]
    else:
        from ..perf.pool import parallel_map

        bounds = [len(caps) * k // jobs for k in range(jobs + 1)]
        tasks = [
            (trace, policy, method, scalar_run, tuple(caps[bounds[k] : bounds[k + 1]]))
            for k in range(jobs)
            if bounds[k] < bounds[k + 1]
        ]
        counts = [triple for chunk in parallel_map(_sweep_task, tasks, jobs=jobs)
                  for triple in chunk]
    cls = BeladyReplayResult if policy == "belady" else LruReplayResult
    results = [
        cls(
            capacity=c,
            loads=loads,
            stores=evict_stores + flush,
            n_accesses=trace.n_accesses,
            distinct=trace.n_elements,
            evict_stores=evict_stores,
        )
        for c, (loads, evict_stores, flush) in zip(caps, counts)
    ]
    if probe.enabled:
        prefix = f"replay.{policy}"
        probe.count(f"{prefix}.replays", len(results))
        probe.count(f"{prefix}.accesses", trace.n_accesses * len(results))
        misses = sum(r.loads for r in results)
        probe.count(f"{prefix}.misses", misses)
        probe.count(f"{prefix}.hits", trace.n_accesses * len(results) - misses)
        probe.count(f"{prefix}.stores", sum(r.stores for r in results))
    return results


# --------------------------------------------------------------------- #
# incremental replay: op-at-a-time LRU from any cache snapshot
# --------------------------------------------------------------------- #

def op_access_lists(trace: CompiledTrace) -> list[list[int]]:
    """Per-op element-ID access lists (duplicates kept, stream order).

    Plain Python lists, cached on the trace: the incremental cursor below
    touches a few ops at a time, where per-access list iteration beats
    numpy slicing by an order of magnitude.
    """
    cached = trace._replay_cache.get("op_access_lists")
    if cached is None:
        ids = trace.elem_ids.tolist()
        starts = trace.op_starts.tolist()
        cached = [ids[starts[i] : starts[i + 1]] for i in range(trace.n_ops)]
        trace._replay_cache["op_access_lists"] = cached
    return cached


def op_element_sets(trace: CompiledTrace) -> list[frozenset[int]]:
    """Per-op *distinct* element IDs (the op footprints), cached."""
    cached = trace._replay_cache.get("op_element_sets")
    if cached is None:
        cached = [frozenset(acc) for acc in op_access_lists(trace)]
        trace._replay_cache["op_element_sets"] = cached
    return cached


class LruCursor:
    """Op-at-a-time LRU replay with snapshot / restore / suffix replay.

    The order-search engine (:mod:`repro.graph.search`) needs two things
    the batch replays above cannot give it: the *incremental* load cost of
    emitting one more op from a given cache state (beam / lookahead
    expansion), and the cost of an order suffix replayed from a mid-stream
    snapshot (annealing re-costs only the part of the order a move
    changed).  The cursor keeps exact element-level LRU state — an
    insertion-ordered dict as the recency list — and applies ops access by
    access, so applying a full order reproduces
    ``lru_replay_trace(trace.reorder(order), capacity).loads`` bit for bit
    (asserted by the test suite).  Stores are not tracked: the cursor is a
    search objective, and the load count alone orders candidate schedules.
    """

    __slots__ = ("trace", "capacity", "loads", "_cache", "_accesses")

    def __init__(self, trace: CompiledTrace, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.trace = trace
        self.capacity = capacity
        self.loads = 0
        # insertion-ordered dict as LRU recency list: oldest entry first.
        self._cache: dict[int, None] = {}
        self._accesses = op_access_lists(trace)

    # -- state ---------------------------------------------------------- #
    @property
    def resident(self) -> list[int]:
        """Resident element IDs, least recently used first."""
        return list(self._cache)

    def snapshot(self) -> tuple[int, tuple[int, ...]]:
        """An immutable (loads, recency-ordered residents) checkpoint."""
        return (self.loads, tuple(self._cache))

    def restore(self, snap: tuple[int, tuple[int, ...]]) -> None:
        self.loads = snap[0]
        self._cache = dict.fromkeys(snap[1])

    def clone(self) -> "LruCursor":
        other = object.__new__(LruCursor)
        other.trace = self.trace
        other.capacity = self.capacity
        other.loads = self.loads
        other._cache = dict(self._cache)
        other._accesses = self._accesses
        return other

    # -- costing -------------------------------------------------------- #
    def peek_op(self, i: int) -> int:
        """Loads op ``i`` would incur right now (no state change).

        An *optimistic lower bound*: the count of footprint elements not
        resident at op entry.  It is exact unless the op's own misses
        evict a resident footprint element before the op touches it
        (cache full, the element older than every non-footprint
        resident), in which case the element is re-loaded and
        :meth:`apply_op` charges more.  Searches use peeks to *rank*
        candidates; accumulated costs always come from ``apply_op``,
        which is exact.
        """
        cache = self._cache
        missing = 0
        for e in op_element_sets(self.trace)[i]:
            if e not in cache:
                missing += 1
        return missing

    def apply_op(self, i: int) -> int:
        """Emit op ``i``: update cache state, return the loads it cost."""
        cache = self._cache
        capacity = self.capacity
        loads = 0
        for e in self._accesses[i]:
            if e in cache:
                del cache[e]  # refresh recency: move to the young end
            else:
                loads += 1
                if len(cache) >= capacity:
                    del cache[next(iter(cache))]
            cache[e] = None
        self.loads += loads
        return loads

    def apply(self, ops: "Sequence[int]") -> int:
        """Emit a run of ops; returns the total loads of the run."""
        before = self.loads
        for i in ops:
            self.apply_op(i)
        return self.loads - before


def lru_suffix_cost(
    trace: CompiledTrace,
    capacity: int,
    ops: "Sequence[int]",
    snapshot: tuple[int, tuple[int, ...]] | None = None,
) -> int:
    """Total LRU loads of replaying ``ops`` from ``snapshot`` (or cold).

    The one-shot form of :class:`LruCursor`: restore the checkpoint, apply
    the suffix, return the cumulative load count (prefix loads included
    when the snapshot carries them).
    """
    cursor = LruCursor(trace, capacity)
    if snapshot is not None:
        cursor.restore(snapshot)
    cursor.apply(ops)
    return cursor.loads
