"""The compiled trace IR: element access streams as dense numpy arrays.

Every replay and graph analysis in this library walks the same
element-granular access stream of a compute-op sequence.  The original
representation (:func:`repro.sched.schedule.access_sequence`) materializes
one Python ``((matrix, flat), is_write)`` tuple per element touch, which
caps experiments at toy sizes.  :class:`CompiledTrace` is the array form of
exactly the same stream:

* ``(matrix, flat_index)`` keys are interned into dense int64 *element IDs*
  (``0 .. n_elements-1``), with decode tables ``key_matrix`` / ``key_flat``;
* the whole stream is three arrays — ``elem_ids``, ``is_write`` and the op
  boundary offsets ``op_starts`` (CSR style, ``n_ops + 1`` entries);
* ``op_read_ends[i]`` marks where op ``i``'s read-derived accesses end and
  its write-only extras begin (empty for every op in this library, where
  written regions are subsets of read regions — kept for generality, like
  the reference traversal).

The build is vectorized: each op contributes whole region ``.flat`` arrays
(offset into a per-matrix global index space), membership tests are
``searchsorted`` probes, and the final interning is one ``np.unique`` over
the concatenated stream.  The access *order* is bit-compatible with
:func:`~repro.sched.schedule.access_sequence_reference`: each op's read
regions element by element (flagged as writes where the element is also
written), then written elements not covered by any read region.

``next_use()`` / ``prev_access()`` give the vectorized position links that
the array-based replays (:mod:`repro.trace.replay`) and the Belady/MIN
floor are built on; :mod:`repro.trace.io` serializes the arrays to a
compact ``.npz`` container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sched.ops import ComputeOp
from ..sched.schedule import ComputeStep, Schedule


def _in_sorted(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in the sorted duplicate-free ``table``."""
    if table.size == 0:
        return np.zeros(values.shape, dtype=bool)
    idx = np.searchsorted(table, values)
    idx[idx == table.size] = table.size - 1
    return table[idx] == values


# eq=False: the array fields make a field-wise __eq__ ill-defined (numpy ==
# is elementwise); compare streams via the arrays or to_access_sequence().
@dataclass(eq=False)
class CompiledTrace:
    """An element-granular access stream compiled to dense numpy arrays.

    Attributes
    ----------
    matrices:
        Matrix names in interning order; ``key_matrix`` indexes into it.
    shapes:
        ``name -> (rows, cols)`` of the matrices the stream addresses
        (may be empty when compiled from a bare op list).
    elem_ids:
        int64 ``[n_accesses]`` — dense element ID of every touch, in
        stream order.
    is_write:
        bool ``[n_accesses]`` — whether the touch writes the element.
    op_starts:
        int64 ``[n_ops + 1]`` — op ``i`` owns accesses
        ``op_starts[i]:op_starts[i+1]``.
    op_read_ends:
        int64 ``[n_ops]`` — boundary between op ``i``'s read-derived
        accesses and its write-only extras.
    key_matrix / key_flat:
        decode tables: element ID ``e`` is element ``key_flat[e]`` of
        matrix ``matrices[key_matrix[e]]``.
    ops:
        the compute ops the trace was compiled from, when available
        (``None`` after :func:`~repro.trace.io.load_trace` — replays do
        not need them, DAG extraction does).
    """

    matrices: tuple[str, ...]
    shapes: dict[str, tuple[int, int]]
    elem_ids: np.ndarray
    is_write: np.ndarray
    op_starts: np.ndarray
    op_read_ends: np.ndarray
    key_matrix: np.ndarray
    key_flat: np.ndarray
    ops: list[ComputeOp] | None = field(default=None, repr=False)
    _next_use: np.ndarray | None = field(default=None, repr=False, compare=False)
    _prev_access: np.ndarray | None = field(default=None, repr=False, compare=False)
    #: memo for expensive capacity-independent replay artifacts (reuse
    #: distances, element-sorted permutations) keyed by artifact name.
    _replay_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #
    @property
    def n_accesses(self) -> int:
        return int(self.elem_ids.size)

    @property
    def n_ops(self) -> int:
        return int(self.op_starts.size) - 1

    @property
    def n_elements(self) -> int:
        """Distinct elements touched (the cold-miss floor of any replay)."""
        return int(self.key_flat.size)

    def __len__(self) -> int:
        return self.n_accesses

    # ------------------------------------------------------------------ #
    # decoding
    # ------------------------------------------------------------------ #
    def key_of(self, elem_id: int) -> tuple[str, int]:
        """Decode one element ID back to its ``(matrix, flat)`` key."""
        return (self.matrices[int(self.key_matrix[elem_id])], int(self.key_flat[elem_id]))

    def keys(self) -> list[tuple[str, int]]:
        """All interned keys, indexed by element ID."""
        names = self.matrices
        return [
            (names[m], f)
            for m, f in zip(self.key_matrix.tolist(), self.key_flat.tolist())
        ]

    def to_access_sequence(self) -> list[tuple[tuple[str, int], bool]]:
        """The stream as ``((matrix, flat), is_write)`` tuples.

        Bit-compatible with the reference traversal
        (:func:`~repro.sched.schedule.access_sequence_reference`); kept so
        legacy consumers and cross-checks can round-trip through the IR.
        """
        keys = self.keys()
        return [
            (keys[e], w)
            for e, w in zip(self.elem_ids.tolist(), self.is_write.tolist())
        ]

    def op_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(element IDs, write flags) of op ``i``'s accesses."""
        s, e = int(self.op_starts[i]), int(self.op_starts[i + 1])
        return self.elem_ids[s:e], self.is_write[s:e]

    # ------------------------------------------------------------------ #
    # position links
    # ------------------------------------------------------------------ #
    def _links(self) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) pairs of consecutive accesses to the same element."""
        order = np.argsort(self.elem_ids, kind="stable")
        ids_sorted = self.elem_ids[order]
        same = ids_sorted[1:] == ids_sorted[:-1]
        return order[:-1][same], order[1:][same]

    def next_use(self) -> np.ndarray:
        """``next_use[p]``: position of the next access to ``elem_ids[p]``.

        The sentinel for "never used again" is ``n_accesses`` (so the array
        is directly usable as a priority without overflow games).  Computed
        once via a stable argsort (reverse ``np.unique``-style indexing)
        and cached.
        """
        if self._next_use is None:
            nxt = np.full(self.n_accesses, self.n_accesses, dtype=np.int64)
            src, dst = self._links()
            nxt[src] = dst
            self._next_use = nxt
        return self._next_use

    def prev_access(self) -> np.ndarray:
        """``prev_access[p]``: previous access to the same element, else -1."""
        if self._prev_access is None:
            prev = np.full(self.n_accesses, -1, dtype=np.int64)
            src, dst = self._links()
            prev[dst] = src
            self._prev_access = prev
        return self._prev_access

    # ------------------------------------------------------------------ #
    # derived traces
    # ------------------------------------------------------------------ #
    def reorder(self, order: Sequence[int]) -> "CompiledTrace":
        """The trace of the same ops emitted in a different total order.

        Element interning is shared (no re-compilation): the new stream is
        a gather of the old op slices, which is what makes rescheduling
        sweeps over one recorded trace cheap.
        """
        order = list(order)
        if sorted(order) != list(range(self.n_ops)):
            raise ConfigurationError(
                f"order must be a permutation of 0..{self.n_ops - 1}"
            )
        return self.select_ops(order)

    def select_ops(self, indices: Sequence[int]) -> "CompiledTrace":
        """The sub-trace of a subset of ops, emitted in the given order.

        This is how the sharded executor slices one compiled trace into
        per-node shards without recompiling: element interning (IDs, decode
        tables, ``n_elements``) is shared with the parent, so element IDs
        of different shards remain directly comparable — the cross-shard
        transfer accounting depends on that.  Position links and replay
        caches are *not* shared (next-use is a property of the stream, not
        the interning); the sub-trace recomputes its own lazily.

        ``indices`` may select any subset in any order, but must not repeat
        an op.  :meth:`reorder` is the special case of a full permutation.
        """
        order = [int(i) for i in indices]
        if order and (min(order) < 0 or max(order) >= self.n_ops):
            raise ConfigurationError(
                f"op indices must lie in 0..{self.n_ops - 1}"
            )
        if len(set(order)) != len(order):
            raise ConfigurationError("op indices must not repeat")
        starts = self.op_starts
        sizes = np.diff(starts)
        gather = np.concatenate(
            [np.arange(starts[i], starts[i + 1], dtype=np.int64) for i in order]
        ) if order else np.zeros(0, dtype=np.int64)
        new_sizes = sizes[order] if order else sizes[:0]
        new_starts = np.zeros(len(order) + 1, dtype=np.int64)
        np.cumsum(new_sizes, out=new_starts[1:])
        read_lens = self.op_read_ends - starts[:-1]
        new_read_ends = new_starts[:-1] + read_lens[order]
        return CompiledTrace(
            matrices=self.matrices,
            shapes=self.shapes,
            elem_ids=self.elem_ids[gather],
            is_write=self.is_write[gather],
            op_starts=new_starts,
            op_read_ends=new_read_ends,
            key_matrix=self.key_matrix,
            key_flat=self.key_flat,
            ops=[self.ops[i] for i in order] if self.ops is not None else None,
        )


def _ops_of(source: "Schedule | list[ComputeOp]") -> list[ComputeOp]:
    if isinstance(source, Schedule):
        return [s.op for s in source.steps if isinstance(s, ComputeStep)]
    return list(source)


def compile_trace(
    source: "Schedule | list[ComputeOp] | CompiledTrace",
    shapes: dict[str, tuple[int, int]] | None = None,
) -> CompiledTrace:
    """Compile a schedule or op list into a :class:`CompiledTrace`.

    Passing an already-compiled trace returns it unchanged, so consumers
    can accept either representation without re-compiling.
    """
    if isinstance(source, CompiledTrace):
        return source
    if isinstance(source, Schedule):
        shapes = dict(source.shapes)
    ops = _ops_of(source)
    if shapes is None:
        shapes = {}

    # Pass 1: intern matrix names, collect region arrays, find the flat span.
    mat_index: dict[str, int] = {}
    per_op: list[tuple[list[tuple[int, np.ndarray]], list[tuple[int, np.ndarray]]]] = []
    max_flat = -1
    for op in ops:
        reads: list[tuple[int, np.ndarray]] = []
        writes: list[tuple[int, np.ndarray]] = []
        for group, regions in ((reads, op.reads()), (writes, op.writes())):
            for region in regions:
                mi = mat_index.setdefault(region.matrix, len(mat_index))
                flat = region.flat
                if flat.size:
                    max_flat = max(max_flat, int(flat[-1]))
                group.append((mi, flat))
        per_op.append((reads, writes))

    # Pass 2: per op, reproduce the canonical traversal on global IDs.
    stride = np.int64(max_flat + 1 if max_flat >= 0 else 1)
    gid_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    op_sizes = np.zeros(len(ops), dtype=np.int64)
    read_lens = np.zeros(len(ops), dtype=np.int64)
    empty = np.zeros(0, dtype=np.int64)
    for i, (reads, writes) in enumerate(per_op):
        wg = (
            np.concatenate([mi * stride + flat for mi, flat in writes])
            if writes
            else empty
        )
        wu = np.unique(wg)
        rg = (
            np.concatenate([mi * stride + flat for mi, flat in reads])
            if reads
            else empty
        )
        read_writes = _in_sorted(rg, wu)
        extras = wg[~_in_sorted(wg, np.unique(rg))] if wg.size else empty
        gid_parts.append(rg)
        gid_parts.append(extras)
        write_parts.append(read_writes)
        write_parts.append(np.ones(extras.size, dtype=bool))
        read_lens[i] = rg.size
        op_sizes[i] = rg.size + extras.size

    all_gids = np.concatenate(gid_parts) if gid_parts else empty
    is_write = (
        np.concatenate(write_parts) if write_parts else np.zeros(0, dtype=bool)
    )
    uniq, elem_ids = np.unique(all_gids, return_inverse=True)
    op_starts = np.zeros(len(ops) + 1, dtype=np.int64)
    np.cumsum(op_sizes, out=op_starts[1:])

    matrices = tuple(mat_index)
    return CompiledTrace(
        matrices=matrices,
        shapes=shapes,
        elem_ids=elem_ids.astype(np.int64, copy=False),
        is_write=is_write,
        op_starts=op_starts,
        op_read_ends=op_starts[:-1] + read_lens,
        key_matrix=(uniq // stride).astype(np.int32),
        key_flat=(uniq % stride).astype(np.int64),
        ops=ops,
    )
