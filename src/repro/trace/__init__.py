"""Compiled trace IR: the array representation every replay consumes.

This package is the performance substrate of the analysis layers:

* :mod:`repro.trace.compiled` — :class:`CompiledTrace`, the element access
  stream of a schedule/op list as dense numpy arrays (interned element
  IDs, write flags, op boundaries) plus vectorized next-use/previous-
  access links;
* :mod:`repro.trace.replay` — array-based LRU and Belady/MIN cache
  replays over the IR (chunked boundary scanning: vectorized hit runs,
  per-access work only at misses);
* :mod:`repro.trace.io` — compact ``.npz`` + JSON-header on-disk formats
  for compiled traces and for full schedules (reconstructible compute
  ops), behind ``python -m repro trace``.

The legacy tuple-per-touch walkers survive as ``*_reference``
implementations next to their vectorized replacements
(:func:`repro.analysis.lru_replay.lru_replay_reference`,
:func:`repro.graph.policies.belady_replay_reference`,
:func:`repro.sched.schedule.access_sequence_reference`) and are
cross-checked bit for bit in the test suite.
"""

from .compiled import CompiledTrace, compile_trace
from .io import (
    FORMAT_VERSION,
    file_kind,
    load_schedule,
    load_trace,
    save_schedule,
    save_trace,
)
from .replay import (
    BeladyReplayResult,
    LruCursor,
    LruReplayResult,
    belady_replay_trace,
    lru_replay_trace,
    lru_suffix_cost,
    sweep_replay_trace,
)

__all__ = [
    "CompiledTrace",
    "compile_trace",
    "FORMAT_VERSION",
    "file_kind",
    "load_schedule",
    "load_trace",
    "save_schedule",
    "save_trace",
    "BeladyReplayResult",
    "LruCursor",
    "LruReplayResult",
    "belady_replay_trace",
    "lru_replay_trace",
    "lru_suffix_cost",
    "sweep_replay_trace",
]
