"""Schedule IR: compute ops, op-stream recording/replay, and legality checks.

Algorithms in this library drive a :class:`~repro.machine.machine.TwoLevelMachine`
imperatively, but every machine call can also be *recorded* into a flat op
stream (:class:`~repro.sched.schedule.Schedule`), replayed on another
machine, and validated without any machine at all
(:func:`~repro.sched.validate.validate_schedule`).  This is what lets the
test suite prove schedule legality independently of the simulator that
produced the counts.
"""

from .ops import (
    ComputeOp,
    OuterColsUpdate,
    syrk_outer_update,
    TriangleUpdate,
    TriangleCrossUpdate,
    GemmOuterUpdate,
    TrsmSolveStep,
    UpperSolveStep,
    UnitLowerSolveStep,
    CholFactorResident,
    LuFactorResident,
    cholesky_mults,
    cholesky_flops,
)
from .schedule import (
    Schedule,
    LoadStep,
    EvictStep,
    ComputeStep,
    access_sequence,
    access_sequence_reference,
    record_schedule,
    replay_schedule,
)
from .validate import validate_schedule, schedule_footprint

__all__ = [
    "ComputeOp",
    "OuterColsUpdate",
    "syrk_outer_update",
    "TriangleUpdate",
    "TriangleCrossUpdate",
    "GemmOuterUpdate",
    "TrsmSolveStep",
    "UpperSolveStep",
    "UnitLowerSolveStep",
    "CholFactorResident",
    "LuFactorResident",
    "cholesky_mults",
    "cholesky_flops",
    "Schedule",
    "LoadStep",
    "EvictStep",
    "ComputeStep",
    "access_sequence",
    "access_sequence_reference",
    "record_schedule",
    "replay_schedule",
    "validate_schedule",
    "schedule_footprint",
]
