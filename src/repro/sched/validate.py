"""Machine-independent legality checking of recorded schedules.

:func:`validate_schedule` replays a schedule purely symbolically — residency
bitmaps and an occupancy counter, no numerics, no machine — and raises
:class:`~repro.errors.ScheduleError` on the first violation of the model's
rules:

* a load may not exceed capacity ``S`` (and, by default, may not target
  already-resident elements);
* an evict must target resident elements;
* a compute may only touch resident elements.

This is the test suite's independent referee: the simulator that produced
the I/O counts cannot be the only thing asserting the schedule was legal.
Every raised error carries a structured
:class:`~repro.check.findings.Finding` (same codes as the static certifier
:mod:`repro.check.certify`, which proves the same invariants without the
step-by-step walk and reports *all* violations instead of the first).
"""

from __future__ import annotations

import numpy as np

from ..check.findings import Finding
from ..errors import ScheduleError
from ..machine.regions import Region, merge_regions
from .schedule import ComputeStep, EvictStep, LoadStep, Schedule


def _fail(code: str, message: str, op_index: int | None = None, **context) -> ScheduleError:
    finding = Finding(code=code, message=message, op_index=op_index, context=context)
    return ScheduleError(message, finding=finding)


def validate_schedule(
    schedule: Schedule,
    capacity: int,
    *,
    allow_redundant_loads: bool = False,
    require_empty_end: bool = True,
) -> dict[str, int]:
    """Check every step of ``schedule`` against the model's rules.

    Returns summary counters (loads, stores, peak occupancy) on success,
    raises :class:`ScheduleError` — with a :class:`Finding` attached as
    ``.finding`` — on the first violation.
    """
    masks = {name: np.zeros(r * c, dtype=bool) for name, (r, c) in schedule.shapes.items()}
    occupancy = 0
    peak = 0
    loads = 0
    stores = 0

    def mask_for(region: Region, pos: int) -> np.ndarray:
        try:
            return masks[region.matrix]
        except KeyError:
            raise _fail(
                "RPS106",
                f"step references unknown matrix {region.matrix!r}",
                pos,
                matrix=region.matrix,
            ) from None

    for pos, step in enumerate(schedule.steps):
        if isinstance(step, LoadStep):
            mask = mask_for(step.region, pos)
            idx = step.region.flat
            already = mask[idx]
            if already.any() and not allow_redundant_loads:
                raise _fail(
                    "RPS102",
                    f"step {pos}: redundant load of {int(already.sum())} resident "
                    f"element(s) of {step.region.matrix!r}",
                    pos,
                    elements=int(already.sum()),
                    matrix=step.region.matrix,
                )
            fresh = int((~already).sum())
            if occupancy + fresh > capacity:
                raise _fail(
                    "RPS104",
                    f"step {pos}: load would push occupancy {occupancy} -> "
                    f"{occupancy + fresh} beyond capacity {capacity}",
                    pos,
                    occupancy=occupancy + fresh,
                    capacity=capacity,
                )
            mask[idx] = True
            occupancy += fresh
            peak = max(peak, occupancy)
            loads += idx.size
        elif isinstance(step, EvictStep):
            mask = mask_for(step.region, pos)
            idx = step.region.flat
            resident = mask[idx]
            if not resident.all():
                raise _fail(
                    "RPS103",
                    f"step {pos}: evict of {int((~resident).sum())} non-resident "
                    f"element(s) of {step.region.matrix!r}",
                    pos,
                    elements=int((~resident).sum()),
                    matrix=step.region.matrix,
                )
            mask[idx] = False
            occupancy -= int(idx.size)
            if step.writeback:
                stores += int(idx.size)
        elif isinstance(step, ComputeStep):
            for region in list(step.op.reads()) + list(step.op.writes()):
                mask = mask_for(region, pos)
                resident = mask[region.flat]
                if not resident.all():
                    raise _fail(
                        "RPS101",
                        f"step {pos}: compute {step.op.name!r} touches "
                        f"{int((~resident).sum())} non-resident element(s) of "
                        f"{region.matrix!r}",
                        pos,
                        elements=int((~resident).sum()),
                        matrix=region.matrix,
                        op=step.op.name,
                    )
        else:  # pragma: no cover - defensive
            raise ScheduleError(f"step {pos}: unknown step type {type(step).__name__}")

    if require_empty_end and occupancy != 0:
        raise _fail(
            "RPS105",
            f"fast memory not empty at end of schedule ({occupancy} resident)",
            len(schedule.steps) - 1 if schedule.steps else None,
            resident=occupancy,
        )
    return {"loads": loads, "stores": stores, "peak_occupancy": peak}


def schedule_footprint(schedule: Schedule) -> dict[str, int]:
    """Distinct elements touched per matrix across the whole schedule.

    Useful for asserting e.g. that TBS reads every element of ``C``'s lower
    triangle exactly once (footprint == loads for that matrix).
    """
    regions: list[Region] = []
    for step in schedule.steps:
        if isinstance(step, LoadStep):
            regions.append(step.region)
    return {r.matrix: r.size for r in merge_regions(regions)}
