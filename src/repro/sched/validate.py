"""Machine-independent legality checking of recorded schedules.

:func:`validate_schedule` replays a schedule purely symbolically — residency
bitmaps and an occupancy counter, no numerics, no machine — and raises
:class:`~repro.errors.ScheduleError` on the first violation of the model's
rules:

* a load may not exceed capacity ``S`` (and, by default, may not target
  already-resident elements);
* an evict must target resident elements;
* a compute may only touch resident elements.

This is the test suite's independent referee: the simulator that produced
the I/O counts cannot be the only thing asserting the schedule was legal.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScheduleError
from ..machine.regions import Region, merge_regions
from .schedule import ComputeStep, EvictStep, LoadStep, Schedule


def validate_schedule(
    schedule: Schedule,
    capacity: int,
    *,
    allow_redundant_loads: bool = False,
    require_empty_end: bool = True,
) -> dict[str, int]:
    """Check every step of ``schedule`` against the model's rules.

    Returns summary counters (loads, stores, peak occupancy) on success,
    raises :class:`ScheduleError` on the first violation.
    """
    masks = {name: np.zeros(r * c, dtype=bool) for name, (r, c) in schedule.shapes.items()}
    occupancy = 0
    peak = 0
    loads = 0
    stores = 0

    def mask_for(region: Region) -> np.ndarray:
        try:
            return masks[region.matrix]
        except KeyError:
            raise ScheduleError(f"step references unknown matrix {region.matrix!r}") from None

    for pos, step in enumerate(schedule.steps):
        if isinstance(step, LoadStep):
            mask = mask_for(step.region)
            idx = step.region.flat
            already = mask[idx]
            if already.any() and not allow_redundant_loads:
                raise ScheduleError(
                    f"step {pos}: redundant load of {int(already.sum())} resident "
                    f"element(s) of {step.region.matrix!r}"
                )
            fresh = int((~already).sum())
            if occupancy + fresh > capacity:
                raise ScheduleError(
                    f"step {pos}: load would push occupancy {occupancy} -> "
                    f"{occupancy + fresh} beyond capacity {capacity}"
                )
            mask[idx] = True
            occupancy += fresh
            peak = max(peak, occupancy)
            loads += idx.size
        elif isinstance(step, EvictStep):
            mask = mask_for(step.region)
            idx = step.region.flat
            resident = mask[idx]
            if not resident.all():
                raise ScheduleError(
                    f"step {pos}: evict of {int((~resident).sum())} non-resident "
                    f"element(s) of {step.region.matrix!r}"
                )
            mask[idx] = False
            occupancy -= int(idx.size)
            if step.writeback:
                stores += int(idx.size)
        elif isinstance(step, ComputeStep):
            for region in list(step.op.reads()) + list(step.op.writes()):
                mask = mask_for(region)
                resident = mask[region.flat]
                if not resident.all():
                    raise ScheduleError(
                        f"step {pos}: compute {step.op.name!r} touches "
                        f"{int((~resident).sum())} non-resident element(s) of "
                        f"{region.matrix!r}"
                    )
        else:  # pragma: no cover - defensive
            raise ScheduleError(f"step {pos}: unknown step type {type(step).__name__}")

    if require_empty_end and occupancy != 0:
        raise ScheduleError(f"fast memory not empty at end of schedule ({occupancy} resident)")
    return {"loads": loads, "stores": stores, "peak_occupancy": peak}


def schedule_footprint(schedule: Schedule) -> dict[str, int]:
    """Distinct elements touched per matrix across the whole schedule.

    Useful for asserting e.g. that TBS reads every element of ``C``'s lower
    triangle exactly once (footprint == loads for that matrix).
    """
    regions: list[Region] = []
    for step in schedule.steps:
        if isinstance(step, LoadStep):
            regions.append(step.region)
    return {r.matrix: r.size for r in merge_regions(regions)}
