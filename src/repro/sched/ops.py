"""Compute ops: the vectorized units of work schedules execute on the machine.

Every op declares the regions it reads and writes (the machine asserts these
are resident — Section 3 of the paper: "an operation can only be performed
if the corresponding input data is in fast memory") and knows how to apply
itself numerically to the machine's workspace arrays.  Ops never touch
elements outside their declared regions: in strict mode everything else is
NaN-poisoned, so a sloppy ``apply`` would corrupt verification.

The op granularities match the paper's algorithms:

* :class:`OuterColsUpdate` — rank-1 tile update ``C[I,J] += s * A[I,ka] (x) B[J,kb]``,
  the inner step of OOC_SYRK (square tiles), tiled TBS, OOC_TRSM and
  OOC_CHOL panel updates (with ``s = -1``);
* :class:`TriangleUpdate` — the triangle-block update of TBS (Algorithm 4's
  two inner loops, vectorized): ``C[r,r'] += s * A[r,k] A[r',k]`` over pairs
  ``r > r'`` (or ``r >= r'`` on diagonal tiles) of a row set ``R``;
* :class:`GemmOuterUpdate` — ``C[I,J] += s * A[I,k] (x) B[k,J]`` (row-segment
  second operand) for the out-of-core LU baseline;
* :class:`TrsmSolveStep` — one column of a right-triangular solve against a
  streamed row of the triangular tile (the narrow-block trick that lets the
  one-tile algorithms avoid holding two tiles);
* :class:`CholFactorResident` — in-place Cholesky of a fully resident
  diagonal tile (zero I/O, as in the model: resident work is free).

Flop accounting follows the element-op convention so that blocked and
element-level schedules report identical work: a multiply-add is 1 mult /
2 flops, a division 1 mult / 1 flop, a square root 0 mults / 1 flop.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.regions import Region
from ..utils.intervals import as_index_array


class ComputeOp:
    """Base class: reads/writes declarations + numeric apply + work counts."""

    name: str = "compute"
    mults: int = 0
    flops: int = 0

    def reads(self) -> list[Region]:  # pragma: no cover - abstract
        raise NotImplementedError

    def writes(self) -> list[Region]:  # pragma: no cover - abstract
        raise NotImplementedError

    def apply(self, m: TwoLevelMachine) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class OuterColsUpdate(ComputeOp):
    """``C[I, J] += sign * outer(A[I, ka], B[J, kb])``.

    Both streamed operands are *column* segments; ``A`` and ``B`` may be the
    same matrix (SYRK: ``B = A`` and ``ka = kb``; use
    :func:`syrk_outer_update`).  This is the inner step of every square-tile
    schedule in the library.
    """

    name = "outer_cols"

    def __init__(self, m: TwoLevelMachine, c: str, a: str, b: str, I, J, ka: int, kb: int, sign: float = 1.0):
        self.c, self.a, self.b = c, a, b
        self.I = as_index_array(I)
        self.J = as_index_array(J)
        self.ka, self.kb = int(ka), int(kb)
        self.sign = float(sign)
        self._c_region = m.tile(c, self.I, self.J)
        self._a_region = m.column_segment(a, self.I, self.ka)
        self._b_region = m.column_segment(b, self.J, self.kb)
        self.mults = int(self.I.size * self.J.size)
        self.flops = 2 * self.mults

    def reads(self) -> list[Region]:
        return [self._a_region, self._b_region, self._c_region]

    def writes(self) -> list[Region]:
        return [self._c_region]

    def apply(self, m: TwoLevelMachine) -> None:
        cw = m.workspace(self.c)
        aw = m.workspace(self.a)
        bw = m.workspace(self.b)
        u = aw[self.I, self.ka]
        v = bw[self.J, self.kb]
        cw[np.ix_(self.I, self.J)] += self.sign * np.outer(u, v)


def syrk_outer_update(m: TwoLevelMachine, c: str, a: str, I, J, k: int, sign: float = 1.0) -> OuterColsUpdate:
    """SYRK rank-1 tile update ``C[I,J] += sign * A[I,k] (x) A[J,k]``."""
    return OuterColsUpdate(m, c, a, a, I, J, k, k, sign)


class TriangleUpdate(ComputeOp):
    """Triangle-block update over a (possibly scattered) row set ``R``.

    ``C[r, r'] += sign * A[r, k] * A[r', k]`` for all pairs ``r > r'`` of
    ``R`` (``r >= r'`` when ``include_diagonal``).  With scattered ``R``
    this is exactly the TBS block update (one element per square zone); with
    contiguous ``R`` it is the diagonal-tile update of OOC_SYRK.

    Work: ``|R|(|R|-1)/2`` (+``|R|`` with diagonal) multiply-adds, i.e. one
    multiply and two flops each — identical to executing Algorithm 4's two
    inner loops element by element.
    """

    name = "triangle_update"

    def __init__(self, m: TwoLevelMachine, c: str, a: str, R, k: int, sign: float = 1.0, include_diagonal: bool = False):
        self.c, self.a = c, a
        self.R = np.sort(as_index_array(R))
        if self.R.size >= 2 and np.any(np.diff(self.R) == 0):
            raise ConfigurationError("TriangleUpdate row set R must be duplicate-free")
        self.k = int(k)
        self.sign = float(sign)
        self.include_diagonal = bool(include_diagonal)
        n = self.R.size
        diag_k = 0 if include_diagonal else -1
        il, jl = np.tril_indices(n, k=diag_k)
        self._il, self._jl = il, jl
        nc = m.ncols(c)
        self._target_flat = self.R[il] * np.int64(nc) + self.R[jl]
        if include_diagonal:
            self._c_region = m.lower_tile(c, self.R, strict=False)
        else:
            self._c_region = m.triangle_block(c, self.R)
        self._a_region = m.column_segment(a, self.R, self.k)
        self.mults = int(il.size)
        self.flops = 2 * self.mults

    def reads(self) -> list[Region]:
        return [self._a_region, self._c_region]

    def writes(self) -> list[Region]:
        return [self._c_region]

    def apply(self, m: TwoLevelMachine) -> None:
        cw = m.workspace(self.c)
        aw = m.workspace(self.a)
        v = aw[self.R, self.k]
        contrib = self.sign * v[self._il] * v[self._jl]
        cw.ravel()[self._target_flat] += contrib


class GemmOuterUpdate(ComputeOp):
    """``C[I, J] += sign * outer(A[I, k], B[k, J])`` (row-segment second operand).

    The inner step of the out-of-core LU baseline, where the trailing update
    streams a column of ``L`` and a row of ``U``.
    """

    name = "gemm_outer"

    def __init__(self, m: TwoLevelMachine, c: str, a: str, b: str, I, J, k: int, sign: float = 1.0):
        self.c, self.a, self.b = c, a, b
        self.I = as_index_array(I)
        self.J = as_index_array(J)
        self.k = int(k)
        self.sign = float(sign)
        self._c_region = m.tile(c, self.I, self.J)
        self._a_region = m.column_segment(a, self.I, self.k)
        self._b_region = m.row_segment(b, self.k, self.J)
        self.mults = int(self.I.size * self.J.size)
        self.flops = 2 * self.mults

    def reads(self) -> list[Region]:
        return [self._a_region, self._b_region, self._c_region]

    def writes(self) -> list[Region]:
        return [self._c_region]

    def apply(self, m: TwoLevelMachine) -> None:
        cw = m.workspace(self.c)
        aw = m.workspace(self.a)
        bw = m.workspace(self.b)
        u = aw[self.I, self.k]
        v = bw[self.k, self.J]
        cw[np.ix_(self.I, self.J)] += self.sign * np.outer(u, v)


class TrsmSolveStep(ComputeOp):
    """One column of the in-tile right-triangular solve ``X Lᵀ = X``.

    With the tile ``X[I, Jcols]`` resident and its columns ``Jcols[:t]``
    already solved, compute column ``t``::

        X[I, J[t]] = (X[I, J[t]] - X[I, J[:t]] @ L[J[t], J[:t]]) / L[J[t], J[t]]

    reading the streamed row segment ``L[J[t], J[:t+1]]``.  This is the
    narrow-block trick of the one-tile OOC_TRSM / OOC_CHOL variants: the
    triangular tile is never held whole, only one row at a time
    (``s(s+1)/2`` extra traffic per tile — a lower-order term).
    """

    name = "trsm_solve_step"

    def __init__(self, m: TwoLevelMachine, x: str, l: str, I, Jcols, t: int):
        self.x, self.l = x, l
        self.I = as_index_array(I)
        self.Jcols = as_index_array(Jcols)
        self.t = int(t)
        if not (0 <= self.t < self.Jcols.size):
            raise ConfigurationError(f"solve step t={t} out of range for {self.Jcols.size} columns")
        self._x_read = m.tile(x, self.I, self.Jcols[: self.t + 1])
        self._x_write = m.column_segment(x, self.I, int(self.Jcols[self.t]))
        self._l_row = m.row_segment(l, int(self.Jcols[self.t]), self.Jcols[: self.t + 1])
        # t multiply-adds per row for the dot product, plus one division.
        self.mults = int(self.I.size * (self.t + 1))
        self.flops = int(self.I.size * (2 * self.t + 1))

    def reads(self) -> list[Region]:
        return [self._x_read, self._l_row]

    def writes(self) -> list[Region]:
        return [self._x_write]

    def apply(self, m: TwoLevelMachine) -> None:
        xw = m.workspace(self.x)
        lw = m.workspace(self.l)
        jt = int(self.Jcols[self.t])
        if self.t:
            prev = self.Jcols[: self.t]
            lrow = lw[jt, prev]
            acc = xw[np.ix_(self.I, prev)] @ lrow
            xw[self.I, jt] = (xw[self.I, jt] - acc) / lw[jt, jt]
        else:
            xw[self.I, jt] = xw[self.I, jt] / lw[jt, jt]


# Canonical work-count definitions live in kernels.flops; re-exported here
# because the resident-factor op credits them.
from ..kernels.flops import cholesky_flops, cholesky_mults  # noqa: E402


class CholFactorResident(ComputeOp):
    """In-place Cholesky of the resident lower triangle of ``A[R, R]``.

    The tile (including its diagonal) must be resident; the op gathers the
    lower triangle, factors it with the library's reference kernel, and
    scatters the factor back over the same elements.  It performs zero I/O —
    resident work is free in the model — which is why OOC_CHOL's diagonal
    factorizations contribute only lower-order traffic.
    """

    name = "chol_factor_resident"

    def __init__(self, m: TwoLevelMachine, a: str, R):
        self.a = a
        self.R = np.sort(as_index_array(R))
        n = self.R.size
        il, jl = np.tril_indices(n)
        self._il, self._jl = il, jl
        nc = m.ncols(a)
        self._flat = self.R[il] * np.int64(nc) + self.R[jl]
        self._region = m.lower_tile(a, self.R, strict=False)
        self.mults = cholesky_mults(n)
        self.flops = cholesky_flops(n)

    def reads(self) -> list[Region]:
        return [self._region]

    def writes(self) -> list[Region]:
        return [self._region]

    def apply(self, m: TwoLevelMachine) -> None:
        from ..kernels.reference import cholesky_lower_in_place

        aw = m.workspace(self.a)
        n = self.R.size
        tile = np.zeros((n, n), dtype=np.float64)
        tile[self._il, self._jl] = aw.ravel()[self._flat]
        cholesky_lower_in_place(tile)
        aw.ravel()[self._flat] = tile[self._il, self._jl]


class UpperSolveStep(ComputeOp):
    """One column of the in-tile solve ``X U = X`` (``U`` upper triangular).

    With the tile ``X[I, Jcols]`` resident and columns ``Jcols[:t]`` solved::

        X[I, J[t]] = (X[I, J[t]] - X[I, J[:t]] @ U[J[:t], J[t]]) / U[J[t], J[t]]

    streaming the *column* segment ``U[J[:t+1], J[t]]``.  Used by the
    out-of-core LU baseline to scale sub-diagonal panels into ``L``.
    """

    name = "upper_solve_step"

    def __init__(self, m: TwoLevelMachine, x: str, u: str, I, Jcols, t: int):
        self.x, self.u = x, u
        self.I = as_index_array(I)
        self.Jcols = as_index_array(Jcols)
        self.t = int(t)
        if not (0 <= self.t < self.Jcols.size):
            raise ConfigurationError(f"solve step t={t} out of range for {self.Jcols.size} columns")
        self._x_read = m.tile(x, self.I, self.Jcols[: self.t + 1])
        self._x_write = m.column_segment(x, self.I, int(self.Jcols[self.t]))
        self._u_col = m.column_segment(u, self.Jcols[: self.t + 1], int(self.Jcols[self.t]))
        self.mults = int(self.I.size * (self.t + 1))
        self.flops = int(self.I.size * (2 * self.t + 1))

    def reads(self) -> list[Region]:
        return [self._x_read, self._u_col]

    def writes(self) -> list[Region]:
        return [self._x_write]

    def apply(self, m: TwoLevelMachine) -> None:
        xw = m.workspace(self.x)
        uw = m.workspace(self.u)
        jt = int(self.Jcols[self.t])
        if self.t:
            prev = self.Jcols[: self.t]
            ucol = uw[prev, jt]
            acc = xw[np.ix_(self.I, prev)] @ ucol
            xw[self.I, jt] = (xw[self.I, jt] - acc) / uw[jt, jt]
        else:
            xw[self.I, jt] = xw[self.I, jt] / uw[jt, jt]


class UnitLowerSolveStep(ComputeOp):
    """One row of the in-tile solve ``L X = X`` (``L`` unit lower triangular).

    With the tile ``X[Irows, J]`` resident and rows ``Irows[:t]`` solved::

        X[I[t], J] = X[I[t], J] - L[I[t], I[:t]] @ X[I[:t], J]

    streaming the row segment ``L[I[t], I[:t]]`` (the unit diagonal needs no
    division and no load).  Used by the LU baseline's above-diagonal tiles.
    """

    name = "unit_lower_solve_step"

    def __init__(self, m: TwoLevelMachine, x: str, l: str, Irows, J, t: int):
        self.x, self.l = x, l
        self.Irows = as_index_array(Irows)
        self.J = as_index_array(J)
        self.t = int(t)
        if not (0 <= self.t < self.Irows.size):
            raise ConfigurationError(f"solve step t={t} out of range for {self.Irows.size} rows")
        self._x_read = m.tile(x, self.Irows[: self.t + 1], self.J)
        self._x_write = m.row_segment(x, int(self.Irows[self.t]), self.J)
        if self.t:
            self._l_row = m.row_segment(l, int(self.Irows[self.t]), self.Irows[: self.t])
        else:
            self._l_row = None
        self.mults = int(self.J.size * self.t)
        self.flops = int(self.J.size * 2 * self.t)

    def reads(self) -> list[Region]:
        out = [self._x_read]
        if self._l_row is not None:
            out.append(self._l_row)
        return out

    def writes(self) -> list[Region]:
        return [self._x_write]

    def apply(self, m: TwoLevelMachine) -> None:
        if not self.t:
            return  # row 0 is already final (unit diagonal)
        xw = m.workspace(self.x)
        lw = m.workspace(self.l)
        it = int(self.Irows[self.t])
        prev = self.Irows[: self.t]
        lrow = lw[it, prev]
        xw[it, self.J] = xw[it, self.J] - lrow @ xw[np.ix_(prev, self.J)]


class LuFactorResident(ComputeOp):
    """In-place LU (no pivoting) of the fully resident square tile ``A[R, R]``.

    Zero I/O, like :class:`CholFactorResident`; the tile afterwards holds
    ``L`` strictly below the diagonal (unit diagonal implicit) and ``U`` on
    and above it.
    """

    name = "lu_factor_resident"

    def __init__(self, m: TwoLevelMachine, a: str, R):
        from ..kernels.flops import lu_flops, lu_mults

        self.a = a
        self.R = np.sort(as_index_array(R))
        self._region = m.tile(a, self.R, self.R)
        n = self.R.size
        self.mults = lu_mults(n)
        self.flops = lu_flops(n)

    def reads(self) -> list[Region]:
        return [self._region]

    def writes(self) -> list[Region]:
        return [self._region]

    def apply(self, m: TwoLevelMachine) -> None:
        from ..kernels.reference import lu_nopivot_in_place

        aw = m.workspace(self.a)
        ix = np.ix_(self.R, self.R)
        tile = aw[ix].copy()
        lu_nopivot_in_place(tile)
        aw[ix] = tile


class TriangleCrossUpdate(ComputeOp):
    """Triangle-block SYR2K update over a row set ``R``.

    ``C[r, r'] += sign * (A[r, k] B[r', k] + B[r, k] A[r', k])`` for pairs
    ``r > r'`` of ``R`` (with ``r = r'`` included on diagonal tiles, where
    the update degenerates to ``2 A[r,k] B[r,k]``).  This is the SYR2K
    analogue of :class:`TriangleUpdate` — the extension the paper's
    conclusion gestures at ("other kernels which use the same input several
    times"): one load of ``A[R,k]`` and ``B[R,k]`` feeds ``|R|(|R|-1)/2``
    two-multiply updates.

    Work convention: 2 multiplies / 4 flops per pair (two multiply-adds).
    """

    name = "triangle_cross_update"

    def __init__(self, m: TwoLevelMachine, c: str, a: str, b: str, R, k: int, sign: float = 1.0, include_diagonal: bool = False):
        self.c, self.a, self.b = c, a, b
        self.R = np.sort(as_index_array(R))
        if self.R.size >= 2 and np.any(np.diff(self.R) == 0):
            raise ConfigurationError("TriangleCrossUpdate row set R must be duplicate-free")
        self.k = int(k)
        self.sign = float(sign)
        self.include_diagonal = bool(include_diagonal)
        n = self.R.size
        diag_k = 0 if include_diagonal else -1
        il, jl = np.tril_indices(n, k=diag_k)
        self._il, self._jl = il, jl
        nc = m.ncols(c)
        self._target_flat = self.R[il] * np.int64(nc) + self.R[jl]
        if include_diagonal:
            self._c_region = m.lower_tile(c, self.R, strict=False)
        else:
            self._c_region = m.triangle_block(c, self.R)
        self._a_region = m.column_segment(a, self.R, self.k)
        self._b_region = m.column_segment(b, self.R, self.k)
        self.mults = 2 * int(il.size)
        self.flops = 2 * self.mults

    def reads(self) -> list[Region]:
        return [self._a_region, self._b_region, self._c_region]

    def writes(self) -> list[Region]:
        return [self._c_region]

    def apply(self, m: TwoLevelMachine) -> None:
        cw = m.workspace(self.c)
        aw = m.workspace(self.a)
        bw = m.workspace(self.b)
        u = aw[self.R, self.k]
        v = bw[self.R, self.k]
        contrib = self.sign * (u[self._il] * v[self._jl] + v[self._il] * u[self._jl])
        cw.ravel()[self._target_flat] += contrib
