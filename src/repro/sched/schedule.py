"""Op-stream recording and replay.

A :class:`Schedule` is the flat, machine-independent trace of a run: a list
of :class:`LoadStep` / :class:`EvictStep` / :class:`ComputeStep`.  Recording
hooks into :class:`~repro.machine.machine.TwoLevelMachine` via its
``_recorders`` list, so any algorithm can be traced without modification;
replaying feeds the same steps to a fresh machine.  The round-trip property
(recorded stats == replayed stats, and identical numeric results) is part of
the integration test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..machine.machine import TwoLevelMachine
from ..machine.regions import Region
from .ops import ComputeOp


@dataclass(frozen=True)
class LoadStep:
    region: Region


@dataclass(frozen=True)
class EvictStep:
    region: Region
    writeback: bool


@dataclass(frozen=True)
class ComputeStep:
    op: ComputeOp


Step = LoadStep | EvictStep | ComputeStep


@dataclass
class Schedule:
    """A recorded op stream plus the matrix shapes it addresses."""

    steps: list[Step] = field(default_factory=list)
    shapes: dict[str, tuple[int, int]] = field(default_factory=dict)
    # One-pass step statistics, keyed by len(steps).  Recording only ever
    # appends, so a length match means the cache is current; any append
    # (or truncation) invalidates it automatically.  In-place *replacement*
    # of a step without a length change is not supported — steps are frozen
    # dataclasses and nothing in the library rewrites them in place.
    _stats_cache: "tuple[int, dict[str, int], tuple[int, int]] | None" = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def _stats(self) -> tuple[dict[str, int], tuple[int, int]]:
        cache = self._stats_cache
        if cache is not None and cache[0] == len(self.steps):
            return cache[1], cache[2]
        counts = {"load": 0, "evict": 0, "compute": 0}
        loads = stores = 0
        for s in self.steps:
            if isinstance(s, LoadStep):
                counts["load"] += 1
                loads += s.region.size
            elif isinstance(s, EvictStep):
                counts["evict"] += 1
                if s.writeback:
                    stores += s.region.size
            else:
                counts["compute"] += 1
        self._stats_cache = (len(self.steps), counts, (loads, stores))
        return counts, (loads, stores)

    def counts(self) -> dict[str, int]:
        """Step-type histogram (loads / evicts / computes); cached."""
        return dict(self._stats()[0])

    def io_volume(self) -> tuple[int, int]:
        """(loads, stores) in elements, computed from the trace alone; cached."""
        return self._stats()[1]


class _Recorder:
    def __init__(self, schedule: Schedule):
        self.schedule = schedule

    def on_load(self, region: Region) -> None:
        self.schedule.steps.append(LoadStep(region))

    def on_evict(self, region: Region, writeback: bool) -> None:
        self.schedule.steps.append(EvictStep(region, writeback))

    def on_compute(self, op: ComputeOp) -> None:
        self.schedule.steps.append(ComputeStep(op))


def record_schedule(machine: TwoLevelMachine, body: Callable[[], None]) -> Schedule:
    """Run ``body()`` (which drives ``machine``) while recording every step."""
    schedule = Schedule(shapes={n: machine.shape(n) for n in machine.slow.names()})
    rec = _Recorder(schedule)
    machine._recorders.append(rec)
    try:
        body()
    finally:
        machine._recorders.remove(rec)
    return schedule


def access_sequence(ops: "list[ComputeOp] | Schedule") -> list[tuple[tuple[str, int], bool]]:
    """Element-granular ``((matrix, flat), is_write)`` touches of an op stream.

    The canonical traversal all cache replayers walk, so their load counts
    are directly comparable.  Each op touches its read regions element by
    element (flagged as writes where the element is also written), then any
    written elements not covered by a read region.  In this library written
    regions are subsets of reads, so the second group is empty — kept for
    generality.

    This is now a thin compatibility shim over the compiled trace IR
    (:func:`repro.trace.compiled.compile_trace`): new consumers should
    compile once and keep the arrays instead of materializing tuples.  The
    original tuple-per-touch loop survives as
    :func:`access_sequence_reference`, and the test suite asserts the two
    are bit-identical.
    """
    from ..trace.compiled import compile_trace  # local import: avoid cycle

    return compile_trace(ops).to_access_sequence()


def access_sequence_reference(
    ops: "list[ComputeOp] | Schedule",
) -> list[tuple[tuple[str, int], bool]]:
    """The original pure-Python traversal (cross-check path for the IR)."""
    if isinstance(ops, Schedule):
        ops = [s.op for s in ops.steps if isinstance(s, ComputeStep)]
    seq: list[tuple[tuple[str, int], bool]] = []
    for op in ops:
        write_keys = {
            (region.matrix, int(i)) for region in op.writes() for i in region.flat
        }
        read_keys: set[tuple[str, int]] = set()
        for region in op.reads():
            for i in region.flat:
                key = (region.matrix, int(i))
                read_keys.add(key)
                seq.append((key, key in write_keys))
        for region in op.writes():
            for i in region.flat:
                key = (region.matrix, int(i))
                if key not in read_keys:
                    seq.append((key, True))
    return seq


def replay_schedule(schedule: Schedule, machine: TwoLevelMachine) -> None:
    """Feed a recorded schedule to another machine (shapes must match).

    The compute ops embed flat indices computed against the original
    machine's matrix shapes, so the replay machine must register matrices
    with identical shapes (values may differ).
    """
    for name, shape in schedule.shapes.items():
        if name in machine.slow and machine.shape(name) != shape:
            raise ValueError(
                f"shape mismatch for {name!r}: schedule has {shape}, machine has {machine.shape(name)}"
            )
    for step in schedule.steps:
        if isinstance(step, LoadStep):
            machine.load(step.region)
        elif isinstance(step, EvictStep):
            machine.evict(step.region, writeback=step.writeback)
        else:
            machine.compute(step.op)
