"""SYR2K — the paper's "future work" extension, worked out.

The conclusion of the paper suggests extending the triangle-block idea "to
other kernels which use the same input several times".  The canonical next
kernel is the symmetric rank-2k update::

    C += A Bᵀ + B Aᵀ        (A, B of size N x M, C symmetric N x N)

whose element operation ``C[i,j] += A[i,k] B[j,k] + B[i,k] A[j,k]`` reads
*four* streamed values per subdiagonal pair but — crucially — the footprint
of a triangle block's update at iteration ``k`` is only ``2 |R|`` (the two
column segments over the same row set), feeding ``|R|(|R|-1)/2`` pairs.

Carrying the paper's Section 4 analysis through (the balanced-solution
constraint becomes ``I(I-1)/2 + 2 K I <= X``) gives a maximal OI of
``sqrt(S/2)`` multiplies per load — the *same* ceiling as SYRK — hence a
lower bound ``Q >= sqrt(2) N^2 M / sqrt(S)`` (twice SYRK's: there are twice
the multiplies).  The triangle-block schedule below matches it:

* memory: a triangle block (``k(k-1)/2``) plus *two* length-``k`` column
  segments: ``k(k+3)/2 <= S``;
* per block, per column: ``2k`` loads feed ``k(k-1)`` multiplies, so the
  A/B traffic is ``2 N^2 M / (k-1) -> sqrt(2) N^2 M / sqrt(S)``;
* the square-tile baseline streams ``4s`` per column per tile:
  ``2 N^2 M / s -> 2 N^2 M / sqrt(S)`` — the same ``sqrt(2)`` gap as SYRK.

The geometry (zones, indexing family, recursion, strip) is *identical* to
TBS — reused directly from :mod:`repro.core.partition`.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import triangle_side_for_memory
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.tracker import IOStats
from ..sched.ops import OuterColsUpdate, TriangleCrossUpdate
from ..utils.intervals import as_index_array, split_indices
from .partition import plan_partition


def syr2k_triangle_side_for_memory(s: int) -> int:
    """Largest ``k`` with ``k(k+3)/2 <= S`` (triangle block + two segments).

    >>> syr2k_triangle_side_for_memory(14)
    4
    >>> syr2k_triangle_side_for_memory(13)
    3
    """
    if s < 2:
        raise ConfigurationError(f"S must be >= 2, got {s}")
    k = int(math.isqrt(2 * s))
    while k * (k + 3) // 2 > s:
        k -= 1
    while (k + 1) * (k + 4) // 2 <= s:
        k += 1
    return max(k, 0)


def syr2k_square_tile_side(s: int) -> int:
    """Largest tile side with ``t^2 + 4t <= S`` (four streamed segments)."""
    if s < 5:
        raise ConfigurationError(f"S must be >= 5 for a 1x1 tile plus four vectors, got {s}")
    t = int(math.isqrt(s))
    while t * t + 4 * t > s:
        t -= 1
    return t


def syr2k_lower_bound(n: int, m: int, s: int, form: str = "asymptotic") -> float:
    """SYR2K lower bound: ``sqrt(2) N^2 M / sqrt(S)``.

    Derivation mirrors Corollary 4.7: the balanced-solution problem with
    doubled per-iteration footprint has optimum ``<= (1/2) * H''`` in pair
    count, so the OI ceiling per *multiply* is unchanged at ``sqrt(S/2)``
    while the multiply count doubles to ``~N^2 M``.
    """
    if form == "exact":
        mults = n * (n - 1) * m  # 2 per strict subdiagonal pair-triple
    elif form == "asymptotic":
        mults = float(n * n * m)
    else:
        raise ConfigurationError(f"unknown form {form!r}")
    return mults / math.sqrt(s / 2.0)


def ooc_syr2k(
    m: TwoLevelMachine,
    a: str,
    b: str,
    c: str,
    rows,
    cols,
    sign: float = 1.0,
    tile: int | None = None,
) -> IOStats:
    """Square-tile SYR2K baseline (the OOC_SYRK analogue).

    Holds one tile of ``C`` and streams *four* column segments per inner
    step; diagonal tiles hold their lower triangle and stream two.
    """
    rows = as_index_array(rows)
    cols = as_index_array(cols)
    before = m.stats.snapshot()
    t = tile if tile is not None else syr2k_square_tile_side(m.capacity)
    if t * t + 4 * t > m.capacity:
        raise ConfigurationError(f"tile {t} too large for S={m.capacity}")
    blocks = split_indices(rows, t)
    for bi, ri in enumerate(blocks):
        with m.hold(m.lower_tile(c, ri), writeback=True):
            for k in cols:
                sa = m.column_segment(a, ri, int(k))
                sb = m.column_segment(b, ri, int(k))
                m.load(sa)
                m.load(sb)
                m.compute(TriangleCrossUpdate(m, c, a, b, ri, int(k), sign=sign, include_diagonal=True))
                m.evict(sa)
                m.evict(sb)
        for rj in blocks[:bi]:
            with m.hold(m.tile(c, ri, rj), writeback=True):
                for k in cols:
                    segs = [
                        m.column_segment(a, ri, int(k)),
                        m.column_segment(b, rj, int(k)),
                        m.column_segment(b, ri, int(k)),
                        m.column_segment(a, rj, int(k)),
                    ]
                    for seg in segs:
                        m.load(seg)
                    m.compute(OuterColsUpdate(m, c, a, b, ri, rj, int(k), int(k), sign=sign))
                    m.compute(OuterColsUpdate(m, c, b, a, ri, rj, int(k), int(k), sign=sign))
                    for seg in segs:
                        m.evict(seg)
    return m.stats.diff(before)


def tbs_syr2k(
    m: TwoLevelMachine,
    a: str,
    b: str,
    c: str,
    rows,
    cols,
    sign: float = 1.0,
    k: int | None = None,
) -> IOStats:
    """Triangle-block SYR2K: ``C[rows, rows] += sign * (A Bᵀ + B Aᵀ)``.

    The TBS extension: identical partition geometry, two streamed segments
    per column instead of one.  Falls back to :func:`ooc_syr2k` below the
    applicability threshold, exactly like Algorithm 4.
    """
    rows = as_index_array(rows)
    cols = as_index_array(cols)
    if k is None:
        k = syr2k_triangle_side_for_memory(m.capacity)
    if k < 2:
        raise ConfigurationError(f"memory S={m.capacity} cannot fit any SYR2K triangle block")
    if k * (k + 3) // 2 > m.capacity:
        raise ConfigurationError(f"k={k} needs S >= {k * (k + 3) // 2}, got {m.capacity}")
    before = m.stats.snapshot()
    _syr2k_recurse(m, a, b, c, rows, cols, sign, k)
    return m.stats.diff(before)


def _syr2k_recurse(
    m: TwoLevelMachine,
    a: str,
    b: str,
    c: str,
    rows: np.ndarray,
    cols: np.ndarray,
    sign: float,
    k: int,
) -> None:
    n = rows.size
    part = plan_partition(n, k)
    if part is None:
        ooc_syr2k(m, a, b, c, rows, cols, sign=sign)
        return
    ck = part.covered
    if part.leftover:
        strip, prior = rows[ck:], rows[:ck]
        # rectangle part (strip x prior), then the strip's own triangle
        _syr2k_rect(m, a, b, c, strip, prior, cols, sign)
        ooc_syr2k(m, a, b, c, strip, cols, sign=sign)
    for u in range(k):
        _syr2k_recurse(m, a, b, c, rows[part.group(u)], cols, sign, k)
    for (_ij, local_rows) in part.iter_blocks():
        r_global = rows[local_rows]
        block = m.triangle_block(c, r_global)
        m.load(block)
        for kk in cols:
            sa = m.column_segment(a, r_global, int(kk))
            sb = m.column_segment(b, r_global, int(kk))
            m.load(sa)
            m.load(sb)
            m.compute(TriangleCrossUpdate(m, c, a, b, r_global, int(kk), sign=sign))
            m.evict(sa)
            m.evict(sb)
        m.evict(block, writeback=True)


def _syr2k_rect(
    m: TwoLevelMachine,
    a: str,
    b: str,
    c: str,
    rows_i: np.ndarray,
    rows_j: np.ndarray,
    cols: np.ndarray,
    sign: float,
) -> None:
    t = syr2k_square_tile_side(m.capacity)
    for ri in split_indices(rows_i, t):
        for rj in split_indices(rows_j, t):
            with m.hold(m.tile(c, ri, rj), writeback=True):
                for kk in cols:
                    segs = [
                        m.column_segment(a, ri, int(kk)),
                        m.column_segment(b, rj, int(kk)),
                        m.column_segment(b, ri, int(kk)),
                        m.column_segment(a, rj, int(kk)),
                    ]
                    for seg in segs:
                        m.load(seg)
                    m.compute(OuterColsUpdate(m, c, a, b, ri, rj, int(kk), int(kk), sign=sign))
                    m.compute(OuterColsUpdate(m, c, b, a, ri, rj, int(kk), int(kk), sign=sign))
                    for seg in segs:
                        m.evict(seg)


def syr2k_reference(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None, sign: float = 1.0) -> np.ndarray:
    """In-memory oracle: ``C += sign * tril(A Bᵀ + B Aᵀ)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ConfigurationError(f"A and B must share a shape, got {a.shape} vs {b.shape}")
    n = a.shape[0]
    out = np.zeros((n, n)) if c is None else np.asarray(c, dtype=np.float64).copy()
    out += sign * np.tril(a @ b.T + b @ a.T)
    return out
