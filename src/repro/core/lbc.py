"""LBC — Large Block Cholesky (Algorithm 5), the paper's optimal Cholesky.

A right-looking blocked factorization with *large* blocks ``b ~ sqrt(N)``:

    for i in 0 .. N/b - 1:
        I0 = [i*b, (i+1)*b)                # current panel
        OOC_CHOL( A[I0, I0] )              # (1) factor diagonal block
        I1 = [(i+1)*b, N)                  # trailing rows
        OOC_TRSM( A[I0, I0], A[I1, I0] )   # (2) solve panel
        TBS( A[I1, I0], A[I1, I1], -1 )    # (3) symmetric downdate

The whole point: term (3) — the SYRK downdates — dominates the I/O, and
TBS performs it at the optimal ``1/sqrt(2S)`` rate.  The Section 5.2.2
term analysis (experiment E6) gives, for block size ``b``:

    (1) OOC_CHOL:   b^2 N / (3 sqrt(S))
    (2) OOC_TRSM:   b N^2 / (2 sqrt(S))
    (3) TBS A-traffic: N^3 / (3 sqrt(2S))
    (4) C reloads:  N^3 / (6 b)

``b = sqrt(N)`` makes (1), (2), (4) all ``O(N^{5/2})``, leaving
``Q_LBC = N^3 / (3 sqrt(2 S)) + O(N^{5/2})`` (Theorem 5.7) — a factor
``sqrt(2)`` below Bereux's OOC_CHOL and matching Corollary 4.8.

The ``syrk`` engine is pluggable (element TBS / tiled TBS / OOC_SYRK); with
``syrk="ocs"`` the schedule degrades to a right-looking Bereux-style
variant, which E6 uses as a control.
"""

from __future__ import annotations

import numpy as np

from ..baselines.ooc_chol import ooc_chol
from ..baselines.ooc_syrk import ooc_syrk
from ..baselines.ooc_trsm import ooc_trsm
from ..config import lbc_block_size
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.tracker import IOStats
from ..utils.intervals import as_index_array
from .tbs import tbs_syrk
from .tbs_tiled import tbs_tiled_syrk


def lbc_cholesky(
    m: TwoLevelMachine,
    a: str,
    rows,
    b: int | None = None,
    syrk: str = "tbs",
    k: int | None = None,
    tile_b: int | None = None,
) -> IOStats:
    """In-place Cholesky of ``A[rows, rows]`` via LBC; returns the I/O delta.

    Parameters
    ----------
    b:
        Block (panel) size; must divide ``len(rows)``.  Defaults to the
        divisor of ``N`` closest to ``sqrt(N)`` (the paper's choice).
    syrk:
        Engine for the trailing downdate: ``"tbs"`` (Algorithm 4, the
        paper's LBC), ``"tiled"`` (Section 5.1.4 variant), or ``"ocs"``
        (square-tile baseline — yields a right-looking OCC-like control).
    k, tile_b:
        Forwarded to the SYRK engine (triangle side / tile side).
    """
    rows = as_index_array(rows)
    n = rows.size
    if n == 0:
        raise ConfigurationError("empty row set")
    if b is None:
        b = lbc_block_size(n)
    if b < 1 or n % b != 0:
        raise ConfigurationError(f"block size b={b} must divide N={n}")
    if syrk not in ("tbs", "tiled", "ocs"):
        raise ConfigurationError(f"unknown syrk engine {syrk!r}")
    before = m.stats.snapshot()
    nb = n // b
    for i in range(nb):
        i0 = rows[i * b : (i + 1) * b]
        ooc_chol(m, a, i0)
        if (i + 1) * b < n:
            i1 = rows[(i + 1) * b :]
            ooc_trsm(m, a, a, i0, i1)
            if syrk == "tbs":
                tbs_syrk(m, a, a, i1, i0, sign=-1.0, k=k)
            elif syrk == "tiled":
                tbs_tiled_syrk(m, a, a, i1, i0, sign=-1.0, k=k, b=tile_b)
            else:
                ooc_syrk(m, a, a, i1, i0, sign=-1.0)
    return m.stats.diff(before)


def lbc_term_breakdown(
    m: TwoLevelMachine,
    a: str,
    rows,
    b: int | None = None,
    syrk: str = "tbs",
    k: int | None = None,
) -> dict[str, int]:
    """Run LBC recording the per-phase load volumes (E6's decomposition).

    Returns loads attributed to the diagonal factorizations (``chol``), the
    panel solves (``trsm``) and the trailing downdates (``syrk``); the
    downdate component is further split by matrix role in the caller via
    ``loads_by_matrix`` when A and C are distinct matrices (inside LBC they
    are the same matrix, so the split reported here is per-phase only).
    """
    rows = as_index_array(rows)
    n = rows.size
    if b is None:
        b = lbc_block_size(n)
    if b < 1 or n % b != 0:
        raise ConfigurationError(f"block size b={b} must divide N={n}")
    out = {"chol": 0, "trsm": 0, "syrk": 0}
    nb = n // b
    for i in range(nb):
        i0 = rows[i * b : (i + 1) * b]
        out["chol"] += ooc_chol(m, a, i0).loads
        if (i + 1) * b < n:
            i1 = rows[(i + 1) * b :]
            out["trsm"] += ooc_trsm(m, a, a, i0, i1).loads
            if syrk == "tbs":
                out["syrk"] += tbs_syrk(m, a, a, i1, i0, sign=-1.0, k=k).loads
            elif syrk == "tiled":
                out["syrk"] += tbs_tiled_syrk(m, a, a, i1, i0, sign=-1.0, k=k).loads
            else:
                out["syrk"] += ooc_syrk(m, a, a, i1, i0, sign=-1.0).loads
    return out
