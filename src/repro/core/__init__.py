"""The paper's contribution: triangle blocks, indexing families, the TBS and
LBC algorithms, and the improved lower bounds with their proof machinery."""

from .triangle import (
    triangle_block,
    triangle_block_size,
    side_length,
    sigma,
    canonical_triangle,
    symmetric_footprint_size,
)
from .indexing import (
    IndexingFamily,
    CyclicIndexingFamily,
    is_valid_indexing_family,
    block_row_indices,
)
from .partition import TBSPartition, choose_c, plan_partition
from .bounds import (
    syrk_lower_bound,
    cholesky_lower_bound,
    max_operational_intensity,
    literature_bounds_table,
    parallel_cholesky_lower_bound_per_node,
)
from .balanced import (
    BalancedSolution,
    balanced_solution,
    balanced_solution_cost,
    max_ops_bound,
    solve_p_doubleprime,
    enumerate_balanced_optimum,
)
from .tbs import tbs_syrk, TBSReport
from .tbs_tiled import tbs_tiled_syrk
from .lbc import lbc_cholesky
from .syr2k import (
    tbs_syr2k,
    ooc_syr2k,
    syr2k_reference,
    syr2k_lower_bound,
    syr2k_triangle_side_for_memory,
)

__all__ = [
    "triangle_block",
    "triangle_block_size",
    "side_length",
    "sigma",
    "canonical_triangle",
    "symmetric_footprint_size",
    "IndexingFamily",
    "CyclicIndexingFamily",
    "is_valid_indexing_family",
    "block_row_indices",
    "TBSPartition",
    "choose_c",
    "plan_partition",
    "syrk_lower_bound",
    "cholesky_lower_bound",
    "max_operational_intensity",
    "literature_bounds_table",
    "parallel_cholesky_lower_bound_per_node",
    "BalancedSolution",
    "balanced_solution",
    "balanced_solution_cost",
    "max_ops_bound",
    "solve_p_doubleprime",
    "enumerate_balanced_optimum",
    "tbs_syrk",
    "TBSReport",
    "tbs_tiled_syrk",
    "lbc_cholesky",
    "tbs_syr2k",
    "ooc_syr2k",
    "syr2k_reference",
    "syr2k_lower_bound",
    "syr2k_triangle_side_for_memory",
]
