"""Indexing families (Definitions 5.1–5.4, Lemmas 5.3 and 5.5).

The TBS algorithm partitions the off-diagonal part of the result matrix into
``c^2`` triangle blocks, each taking exactly one element from each of the
``k(k-1)/2`` square zones.  The block ``B_{i,j}`` is described by its row
indices, one per zone-row::

    R_{i,j} = { u*c + f_{i,j}(u)  :  0 <= u < k }

where the *indexing family* ``f`` maps ``(i, j, u)`` to a position inside
zone-row ``u`` subject to ``f_{i,j}(0) = j`` and ``f_{i,j}(1) = i``
(Definition 5.1).  Blocks are pairwise disjoint iff ``f`` is *valid*
(Definition 5.2 / Lemma 5.3): two distinct blocks may never agree on two
different zone-rows.

The paper's concrete construction is the *cyclic* family (Definition 5.4)::

    f_{i,j}(u) = j                       if u == 0
                 (i + j*(u-1)) mod c     if u >= 1

which is valid whenever ``c >= k-1`` and ``c`` is coprime with every integer
in ``[2, k-2]`` (Lemma 5.5) — equivalently, coprime with the primorial
``q = prod(p prime <= k-2)``.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..errors import ConfigurationError
from ..utils.primes import is_coprime, primorial_up_to


class IndexingFamily:
    """Base class: a ``(c, k)``-indexing family per Definition 5.1.

    Subclasses implement :meth:`position`; the base class provides block
    row-index construction, the Definition 5.1 sanity requirements, and
    exhaustive validity checking (used by tests and by E5).
    """

    def __init__(self, c: int, k: int):
        if c < 1 or k < 2:
            raise ConfigurationError(f"need c >= 1 and k >= 2, got c={c}, k={k}")
        self.c = int(c)
        self.k = int(k)

    def position(self, i: int, j: int, u: int) -> int:
        """``f_{i,j}(u)``: position of block (i,j)'s row inside zone-row u."""
        raise NotImplementedError  # pragma: no cover

    # ------------------------------------------------------------------ #
    def check_definition(self) -> None:
        """Assert the Definition 5.1 anchoring: f(0) = j and f(1) = i."""
        for i in range(self.c):
            for j in range(self.c):
                if self.position(i, j, 0) != j:
                    raise ConfigurationError(f"f_{{{i},{j}}}(0) = {self.position(i, j, 0)} != j")
                if self.k >= 2 and self.position(i, j, 1) != i:
                    raise ConfigurationError(f"f_{{{i},{j}}}(1) = {self.position(i, j, 1)} != i")

    def rows(self, i: int, j: int) -> np.ndarray:
        """Block ``B_{i,j}``'s row indices ``{u*c + f_{i,j}(u)}`` (Equation 1)."""
        return np.array(
            [u * self.c + self.position(i, j, u) for u in range(self.k)], dtype=np.int64
        )

    def all_rows(self) -> dict[tuple[int, int], np.ndarray]:
        """Row-index sets of all ``c^2`` blocks."""
        return {(i, j): self.rows(i, j) for i in range(self.c) for j in range(self.c)}


class CyclicIndexingFamily(IndexingFamily):
    """The paper's cyclic family (Definition 5.4)."""

    def __init__(self, c: int, k: int, *, check: bool = True):
        super().__init__(c, k)
        if check and not cyclic_family_is_applicable(c, k):
            raise ConfigurationError(
                f"cyclic family needs c >= k-1 and c coprime with [2, k-2]; "
                f"got c={c}, k={k}"
            )

    def position(self, i: int, j: int, u: int) -> int:
        if not (0 <= i < self.c and 0 <= j < self.c and 0 <= u < self.k):
            raise ConfigurationError(f"indices out of range: i={i}, j={j}, u={u}")
        if u == 0:
            return j
        return (i + j * (u - 1)) % self.c


def cyclic_family_is_applicable(c: int, k: int) -> bool:
    """The Lemma 5.5 precondition: ``c >= k-1`` and ``gcd(c, q) = 1``."""
    if c < k - 1:
        return False
    return is_coprime(c, primorial_up_to(k - 2))


def is_valid_indexing_family(family: IndexingFamily) -> bool:
    """Exhaustive Definition 5.2 check (O(c^4 k^2); for modest c, k).

    A family is valid iff no two *distinct* blocks agree on two different
    zone-rows.  Implemented via the contrapositive used by Lemma 5.3's
    proof: for each pair u < v, the map ``(i,j) -> (f(u), f(v))`` must be
    injective.
    """
    c, k = family.c, family.k
    for u, v in combinations(range(k), 2):
        seen: dict[tuple[int, int], tuple[int, int]] = {}
        for i in range(c):
            for j in range(c):
                key = (family.position(i, j, u), family.position(i, j, v))
                if key in seen and seen[key] != (i, j):
                    return False
                seen[key] = (i, j)
    return True


def blocks_are_disjoint(family: IndexingFamily) -> bool:
    """Direct Lemma 5.3 conclusion check: all TB(R_{i,j}) pairwise disjoint.

    Compares the actual element sets (pairs) of every pair of blocks; this
    is the ground truth the validity predicate must imply.  Exhaustive and
    slow — test-sized instances only.
    """
    from .triangle import triangle_block

    blocks = {
        key: triangle_block(rows.tolist()) for key, rows in family.all_rows().items()
    }
    keys = sorted(blocks)
    for a, b in combinations(keys, 2):
        if blocks[a] & blocks[b]:
            return False
    return True


def block_row_indices(c: int, k: int, i: int, j: int) -> np.ndarray:
    """Convenience: cyclic-family row indices of block ``(i, j)``."""
    return CyclicIndexingFamily(c, k).rows(i, j)
