"""Tiled TBS (Section 5.1.4): triangle blocks of ``b x b`` tiles.

The element-level TBS needs ``N >= 2S`` before its triangle blocks apply —
so large that "half a column does not fit in memory".  The tiled variant
trades a ``sqrt(k/(k-1))`` factor for practicality: memory holds a triangle
of ``k(k-1)/2`` *tiles* of side ``b`` plus one streamed column of ``k``
length-``b`` segments::

    b^2 k(k-1)/2 + k b <= S

Blocks now take one *tile-row* from each of the ``k`` groups of ``c``
tile-rows (same cyclic indexing family, applied at tile granularity), and
the per-column update becomes ``k(k-1)/2`` rank-1 outer products.  The
leading A-traffic is ``N^2 M / ((k-1) b)``; with ``b = sqrt(2S / (k(k-1)))``
this is ``(N^2 M / sqrt(2S)) * sqrt(k/(k-1))`` (the paper's Section 5.1.4
bound) and the validity threshold drops to ``N >= ~ sqrt(2S) * k`` — E4
measures both effects.

Intra-group tile pairs recurse; the leftover strip (rows beyond ``c*k*b``)
falls back to OOC_SYRK, as in the element version.
"""

from __future__ import annotations

import math

import numpy as np

from ..baselines.ooc_syrk import ooc_syrk, ooc_syrk_strip
from ..config import tiled_tbs_shape_for_memory
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.tracker import IOStats
from ..sched.ops import OuterColsUpdate
from ..utils.intervals import as_index_array, split_indices
from .partition import plan_partition


def default_tiled_shape(s: int, k: int = 4) -> tuple[int, int]:
    """Default ``(k, b)`` for memory ``S``: caller-chosen ``k`` (>= 3),
    largest feasible ``b``.  Small ``k`` maximizes ``b`` and thus lowers the
    validity threshold; large ``k`` approaches the element version's
    constant.  E4 sweeps this trade-off."""
    if k < 3:
        raise ConfigurationError(f"tiled TBS needs k >= 3, got {k}")
    return k, tiled_tbs_shape_for_memory(s, k)


def tbs_tiled_syrk(
    m: TwoLevelMachine,
    a: str,
    c: str,
    rows,
    cols,
    sign: float = 1.0,
    k: int | None = None,
    b: int | None = None,
) -> IOStats:
    """Tiled TBS: ``C[rows, rows] += sign * A A^T`` (lower incl. diagonal).

    ``k`` is the tile-triangle side, ``b`` the tile side; defaults pick
    ``k=4`` and the largest ``b`` with ``b^2 k(k-1)/2 + k b <= S``.
    Returns the I/O stats delta.
    """
    rows = as_index_array(rows)
    cols = as_index_array(cols)
    if k is None:
        k = 4
    if b is None:
        b = tiled_tbs_shape_for_memory(m.capacity, k)
    if k < 3:
        raise ConfigurationError(f"tiled TBS needs k >= 3, got {k}")
    need = b * b * (k * (k - 1) // 2) + k * b
    if need > m.capacity:
        raise ConfigurationError(f"(k={k}, b={b}) needs S >= {need}, got {m.capacity}")
    before = m.stats.snapshot()
    _tiled_recurse(m, a, c, rows, cols, sign, k, b)
    return m.stats.diff(before)


def _tiled_recurse(
    m: TwoLevelMachine,
    a: str,
    c: str,
    rows: np.ndarray,
    cols: np.ndarray,
    sign: float,
    k: int,
    b: int,
) -> None:
    n = rows.size
    n_tiles = n // b
    part = plan_partition(n_tiles, k) if n_tiles >= 1 else None
    if part is None:
        ooc_syrk(m, a, c, rows, cols, sign=sign)
        return

    ckb = part.covered * b
    # (1) leftover strip: rows beyond the c*k full tile-rows.
    if n > ckb:
        ooc_syrk_strip(m, a, c, rows[ckb:], rows[:ckb], cols, sign=sign)

    # (2) recursion on the k groups of c tile-rows each.
    for u in range(k):
        lo, hi = u * part.c * b, (u + 1) * part.c * b
        _tiled_recurse(m, a, c, rows[lo:hi], cols, sign, k, b)

    # (3) triangle-of-tiles blocks over the square zones.
    tile_rows = split_indices(rows[:ckb], b)  # tile-row u*c+f -> row indices
    for (_ij, local_tile_rows) in part.iter_blocks():
        # Tile-row indices, ascending so tile u > tile v => rows(u) > rows(v).
        tr = sorted(int(t) for t in local_tile_rows)
        row_sets = [tile_rows[t] for t in tr]
        tile_regions = [
            m.tile(c, row_sets[u], row_sets[v]) for u in range(k) for v in range(u)
        ]
        for reg in tile_regions:
            m.load(reg)
        stream_rows = np.concatenate(row_sets)
        for kk in cols:
            seg = m.column_segment(a, stream_rows, int(kk))
            m.load(seg)
            for u in range(k):
                for v in range(u):
                    m.compute(
                        OuterColsUpdate(
                            m, c, a, a, row_sets[u], row_sets[v], int(kk), int(kk), sign=sign
                        )
                    )
            m.evict(seg)
        for reg in tile_regions:
            m.evict(reg, writeback=True)


def tiled_leading_constant(k: int) -> float:
    """The Section 5.1.4 leading-term penalty ``sqrt(k/(k-1))`` over optimal."""
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    return math.sqrt(k / (k - 1.0))
