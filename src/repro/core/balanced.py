"""Balanced solutions and the optimization problems of Section 4.1.

The SYRK lower bound comes from bounding the largest subcomputation
``B ⊆ 𝒮`` that touches at most ``X`` data elements — problem ``P(X)``.
The proof proceeds through three reductions, all implemented here so the
reproduction can *measure* each step:

1. **Balanced solutions** (Definition 4.2): ``B(x, m)`` performs ``m``
   canonical-triangle updates per iteration for ``K = floor(x/m)`` full
   iterations plus a remainder ``T(m')``.  Lemma 4.3: rebalancing any
   solution never increases its data access ``D`` — verified here
   numerically and property-tested against random ``B``.
2. **Integer optimum** (problem ``P'(X)``): over balanced shapes
   ``(I, J, K)`` maximize ``K·I(I-1)/2 + J(J-1)/2`` subject to
   ``I(I-1)/2 + K·I + J <= X``; :func:`enumerate_balanced_optimum` solves
   it exactly by enumeration.
3. **Continuous optimum** (problem ``P''(X)``, Lemma 4.6): the KKT
   solution ``I* = 2/3 + sqrt(1+6X)/3`` with value
   ``H''(X) = (1/108)(sqrt(1+6X)-1)^2 (2 sqrt(1+6X)+1)``, bounded by
   ``sqrt(2)/(3 sqrt(3)) X^{3/2}`` (Theorem 4.1).

The chain ``enumerate <= H'' <= max_ops_bound`` is asserted by tests for a
sweep of ``X``, and ``max_ops_bound`` with ``X = 3S`` yields the paper's
``rho <= sqrt(S/2)`` and hence Corollaries 4.7 / 4.8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..errors import ConfigurationError
from ..kernels.opsets import Triple, data_accessed
from .triangle import canonical_triangle, sigma, sigma_real


@dataclass(frozen=True)
class BalancedSolution:
    """The balanced solution ``B(x, m)`` of Definition 4.2.

    ``K = floor(x/m)`` full iterations each performing ``T(m)``, plus one
    iteration performing ``T(m')`` with ``m' = x - K m``.
    """

    x: int
    m: int

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ConfigurationError(f"m must be >= 1, got {self.m}")
        if self.x < 0:
            raise ConfigurationError(f"x must be >= 0, got {self.x}")

    @property
    def full_iterations(self) -> int:
        return self.x // self.m

    @property
    def remainder(self) -> int:
        return self.x - self.full_iterations * self.m

    def size(self) -> int:
        """``|B(x, m)| = x`` (sanity identity)."""
        return self.x

    def data_accessed(self) -> int:
        """``D(B)`` per Proposition 3.4 applied to the balanced shape.

        Union of the ``B|_k`` is ``T(m)`` (``T(m')`` is a prefix subset), so
        the ``C`` term is ``m``; the ``A`` term is ``K σ(m) + σ(m')``.
        """
        k = self.full_iterations
        if k == 0:
            return self.remainder + sigma(self.remainder)
        return self.m + k * sigma(self.m) + sigma(self.remainder)

    def data_accessed_real(self) -> float:
        """``D`` of the balanced shape under the continuous σ relaxation.

        This is the quantity for which Lemma 4.3's concavity argument is
        airtight; the integer version can exceed an original solution's
        cost by a bounded rounding slack (see :func:`rebalancing_slack`).
        """
        k = self.full_iterations
        if k == 0:
            return self.remainder + sigma_real(self.remainder)
        return self.m + k * sigma_real(self.m) + sigma_real(self.remainder)

    def triples(self) -> set[Triple]:
        """Materialize ``B(x, m)`` as explicit ``(i, j, k)`` triples."""
        out: set[Triple] = set()
        tm = canonical_triangle(self.m)
        for k in range(self.full_iterations):
            out.update((i, j, k) for (i, j) in tm)
        tr = canonical_triangle(self.remainder)
        kk = self.full_iterations
        out.update((i, j, kk) for (i, j) in tr)
        return out


def balanced_solution(x: int, m: int) -> BalancedSolution:
    """Construct ``B(x, m)``; see :class:`BalancedSolution`."""
    return BalancedSolution(x, m)


def balanced_solution_cost(x: int, m: int) -> int:
    """``D(B(x, m))`` without materializing the triples."""
    return BalancedSolution(x, m).data_accessed()


def rebalance(b: Iterable[Triple]) -> BalancedSolution:
    """The balanced counterpart Lemma 4.3 assigns to an arbitrary ``B``:
    ``B(|B|, max_k |B|_k|)``."""
    triples = list(b)
    if not triples:
        raise ConfigurationError("cannot rebalance an empty computation")
    by_k: dict[int, int] = {}
    for (_i, _j, k) in triples:
        by_k[k] = by_k.get(k, 0) + 1
    m = max(by_k.values())
    return BalancedSolution(len(set(triples)), m)


def check_rebalancing_dominates(b: Iterable[Triple]) -> bool:
    """Lemma 4.3 under the continuous σ: ``D_real(balanced) <= D(B)``.

    This is the form the paper's concavity argument proves.  Note
    ``D(B)`` (integer, Prop. 3.4) upper-bounds the continuous cost of
    ``B``'s own restrictions, so the comparison is conservative.
    """
    triples = set(b)
    if not triples:
        return True
    bal = rebalance(triples)
    return bal.data_accessed_real() <= data_accessed(triples) + 1e-9


def rebalancing_slack(b: Iterable[Triple]) -> int:
    """``max(0, D(balanced) - D(B))`` with the *integer* σ — the rounding gap.

    Reproduction finding: with integer σ, Lemma 4.3's middle inequality can
    fail by a small amount (e.g. restriction sizes (4,3,3): balanced cost
    15 vs original 14), because ``σ = ceil(σ_real)`` is not concave.  The
    slack is bounded by the number of non-empty balanced iterations
    (``floor(x/m) + 1``), since each σ rounds up by < 1.  Theorem 4.1 is
    unaffected: its proof bounds the continuous relaxation.
    """
    triples = set(b)
    if not triples:
        return 0
    bal = rebalance(triples)
    return max(0, bal.data_accessed() - data_accessed(triples))


def max_ops_bound(x: float) -> float:
    """Theorem 4.1: optimal value of ``P(X)`` is at most
    ``sqrt(2)/(3 sqrt(3)) * X^{3/2}``."""
    if x < 0:
        raise ConfigurationError(f"X must be >= 0, got {x}")
    return math.sqrt(2.0) / (3.0 * math.sqrt(3.0)) * x**1.5


@dataclass(frozen=True)
class PDoublePrimeSolution:
    """KKT optimum of the continuous problem ``P''(X)`` (Lemma 4.6)."""

    x: float
    i_star: float
    k_star: float
    value: float

    def constraint_slack(self) -> float:
        """``X - (I(I-1)/2 + K I)``; ~0 at the optimum (active constraint)."""
        return self.x - (self.i_star * (self.i_star - 1) / 2.0 + self.k_star * self.i_star)


def solve_p_doubleprime(x: float) -> PDoublePrimeSolution:
    """Closed-form optimum of ``P''(X)`` from the Lemma 4.6 KKT analysis.

    ``I* = 2/3 + sqrt(1+6X)/3``, ``K* = (I* - 1/2)(1 - 1/I*)``, and value
    ``H''(X) = (1/108) (sqrt(1+6X) - 1)^2 (2 sqrt(1+6X) + 1)``.
    """
    if x < 0:
        raise ConfigurationError(f"X must be >= 0, got {x}")
    r = math.sqrt(1.0 + 6.0 * x)
    i_star = 2.0 / 3.0 + r / 3.0
    k_star = (i_star - 0.5) * (1.0 - 1.0 / i_star)
    value = (r - 1.0) ** 2 * (2.0 * r + 1.0) / 108.0
    return PDoublePrimeSolution(x=float(x), i_star=i_star, k_star=k_star, value=value)


@dataclass(frozen=True)
class BalancedOptimum:
    """Exact integer optimum of ``P'(X)`` (found by enumeration)."""

    x: int
    value: int
    i: int
    j: int
    k: int


def enumerate_balanced_optimum(x: int) -> BalancedOptimum:
    """Exact solution of the integer program ``P'(X)`` by enumeration.

    maximize ``K I(I-1)/2 + J(J-1)/2``
    s.t.     ``I(I-1)/2 + K I + J <= X``, ``0 <= J <= I``, ``I >= 1, K >= 0``.

    For fixed ``I`` and ``K`` the best ``J`` is the largest feasible one, so
    the search is O(X) over ``(I, K)`` pairs.  Tests assert
    ``value <= H''(X) <= sqrt(2)/(3 sqrt 3) X^{3/2}``.
    """
    if x < 0:
        raise ConfigurationError(f"X must be >= 0, got {x}")
    best = BalancedOptimum(x=x, value=0, i=1, j=0, k=0)
    i = 2
    while i * (i - 1) // 2 <= x:
        tri = i * (i - 1) // 2
        kmax = (x - tri) // i
        for k in range(kmax + 1):
            budget = x - tri - k * i
            j = min(i, budget)
            value = k * tri + j * (j - 1) // 2
            if value > best.value:
                best = BalancedOptimum(x=x, value=value, i=i, j=j, k=k)
        i += 1
    return best


def syrk_oi_ceiling_from_bound(s: int) -> float:
    """Lemma 3.1 with ``X = 3S`` and Theorem 4.1: ``rho <= sqrt(S/2)``.

    ``|B| <= sqrt(2) (3S/3)^{3/2} / sqrt(3) / ... = sqrt(2) S^{3/2}`` at
    ``X = 3S``, so ``rho <= |B| / (X - S) = sqrt(2) S^{3/2} / (2S) =
    sqrt(S/2)``.  Returned directly; the test suite re-derives it from
    :func:`max_ops_bound` to guard the algebra.
    """
    if s < 1:
        raise ConfigurationError(f"S must be >= 1, got {s}")
    return math.sqrt(s / 2.0)
