"""Lower bounds and operational-intensity ceilings (Sections 1, 2, 4).

This module collects closed forms for:

* the paper's new bounds — Corollary 4.7 (SYRK) and Corollary 4.8
  (Cholesky), both with the ``1/sqrt(2)`` symmetric improvement;
* the literature bounds the paper improves on (Olivry et al. 2020,
  Kwasniewski et al. 2021) and the upper bounds of the Bereux algorithms,
  so benches can plot the full before/after picture;
* the maximal operational intensities: ``sqrt(S/2)`` per multiply
  (``sqrt(2S)`` per flop) for symmetric kernels vs ``sqrt(S)`` (``2 sqrt(S)``)
  for GEMM/LU — the paper's headline "symmetric kernels are intrinsically
  ``sqrt(2)`` better";
* the parallel-model formulas quoted in Section 2.2, for completeness.

Every formula exists in two forms: the paper's *asymptotic* leading term
(``N^2`` / ``N^3``) and the *exact* operation-set form obtained by running
Lemma 3.1 with the exact ``|S|`` or ``|C|`` (``N(N-1)/2·M`` and
``N(N-1)(N-2)/6``).  Measured volumes must exceed the exact form; the
asymptotic form is what converges to the paper's constants.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..kernels.opsets import cholesky_update_count, syrk_opset_size

SQRT2 = math.sqrt(2.0)


def _check(n: int, s: int) -> None:
    if n < 1:
        raise ConfigurationError(f"N must be >= 1, got {n}")
    if s < 1:
        raise ConfigurationError(f"S must be >= 1, got {s}")


def syrk_lower_bound(n: int, m: int, s: int, which: str = "paper", form: str = "asymptotic") -> float:
    """Lower bound on SYRK I/O volume for an ``N x M`` input with memory ``S``.

    ``which``:
      * ``"paper"``   — Corollary 4.7: ``N^2 M / (sqrt(2) sqrt(S))``
      * ``"olivry"``  — prior bound: ``N^2 M / (2 sqrt(S))``
    ``form``:
      * ``"asymptotic"`` — the paper's leading term with ``|S| ~ N^2 M / 2``
      * ``"exact"``      — Lemma 3.1 with the exact ``|S| = N(N-1)/2 * M``
        and rho <= sqrt(S/2) (paper) or rho <= sqrt(S) (olivry's implied OI)
    """
    _check(n, s)
    if m < 1:
        raise ConfigurationError(f"M must be >= 1, got {m}")
    ops = syrk_opset_size(n, m) if form == "exact" else n * n * m / 2.0
    if form not in ("exact", "asymptotic"):
        raise ConfigurationError(f"unknown form {form!r}")
    if which == "paper":
        rho = math.sqrt(s / 2.0)
    elif which == "olivry":
        rho = math.sqrt(float(s))
    else:
        raise ConfigurationError(f"unknown bound {which!r}")
    return ops / rho


def cholesky_lower_bound(n: int, s: int, which: str = "paper", form: str = "asymptotic") -> float:
    """Lower bound on Cholesky I/O volume for ``N x N`` with memory ``S``.

    ``which``:
      * ``"paper"``       — Corollary 4.8: ``N^3 / (3 sqrt(2) sqrt(S))``
      * ``"kwasniewski"`` — ``N^3 / (3 sqrt(S))`` (no-symmetry assumption)
      * ``"olivry"``      — ``N^3 / (6 sqrt(S))``
    """
    _check(n, s)
    ops = cholesky_update_count(n) if form == "exact" else n**3 / 6.0
    if form not in ("exact", "asymptotic"):
        raise ConfigurationError(f"unknown form {form!r}")
    if which == "paper":
        rho = math.sqrt(s / 2.0)
    elif which == "kwasniewski":
        rho = math.sqrt(float(s)) / 2.0  # 2 * ops / sqrt(S) = N^3/(3 sqrt S)
    elif which == "olivry":
        rho = math.sqrt(float(s))
    else:
        raise ConfigurationError(f"unknown bound {which!r}")
    return ops / rho


def syrk_upper_bound(n: int, m: int, s: int, which: str = "tbs") -> float:
    """Leading-term upper bounds of the SYRK algorithms (Thm 5.6 / Bereux).

    ``"tbs"``: ``N^2 M / sqrt(2 S) + N^2/2``; ``"bereux"``: ``N^2 M /
    sqrt(S) + N^2/2`` (both include the one-pass load of ``C``'s lower
    triangle, which the measured volumes contain).
    """
    _check(n, s)
    c_pass = n * (n + 1) / 2.0
    if which == "tbs":
        return n * n * m / math.sqrt(2.0 * s) + c_pass
    if which == "bereux":
        return n * n * m / math.sqrt(float(s)) + c_pass
    raise ConfigurationError(f"unknown algorithm {which!r}")


def cholesky_upper_bound(n: int, s: int, which: str = "lbc") -> float:
    """Leading-term upper bounds for Cholesky (Thm 5.7 / Bereux)."""
    _check(n, s)
    if which == "lbc":
        return n**3 / (3.0 * math.sqrt(2.0 * s))
    if which == "bereux":
        return n**3 / (3.0 * math.sqrt(float(s)))
    raise ConfigurationError(f"unknown algorithm {which!r}")


def max_operational_intensity(s: int, kernel: str = "symmetric", per: str = "mults") -> float:
    """Maximal OI in the two-level model (Lemma 3.1 applied with X = 3S).

    Symmetric kernels (SYRK / Cholesky updates): ``sqrt(S/2)`` per multiply,
    ``sqrt(2S)`` per flop.  Non-symmetric (GEMM / LU): ``sqrt(S)`` per
    multiply, ``2 sqrt(S)`` per flop.
    """
    if s < 1:
        raise ConfigurationError(f"S must be >= 1, got {s}")
    if kernel == "symmetric":
        return math.sqrt(s / 2.0) if per == "mults" else math.sqrt(2.0 * s)
    if kernel == "gemm":
        return math.sqrt(float(s)) if per == "mults" else 2.0 * math.sqrt(float(s))
    raise ConfigurationError(f"unknown kernel class {kernel!r}")


def literature_bounds_table() -> list[dict[str, object]]:
    """The before/after constant table (the intro's four contributions).

    Constants multiply ``N^2 M / sqrt(S)`` for SYRK and ``N^3 / sqrt(S)``
    for Cholesky.
    """
    return [
        {
            "kernel": "SYRK",
            "quantity": "lower bound",
            "before": 0.5,
            "before_source": "Olivry et al. [10]",
            "after": 1.0 / SQRT2,
            "after_source": "Corollary 4.7",
        },
        {
            "kernel": "SYRK",
            "quantity": "algorithm",
            "before": 1.0,
            "before_source": "Bereux OOC_SYRK [4]",
            "after": 1.0 / SQRT2,
            "after_source": "TBS (Theorem 5.6)",
        },
        {
            "kernel": "Cholesky",
            "quantity": "lower bound",
            "before": 1.0 / 6.0,
            "before_source": "Olivry et al. [10]",
            "after": 1.0 / (3.0 * SQRT2),
            "after_source": "Corollary 4.8",
        },
        {
            "kernel": "Cholesky",
            "quantity": "algorithm",
            "before": 1.0 / 3.0,
            "before_source": "Bereux OOC_CHOL [4]",
            "after": 1.0 / (3.0 * SQRT2),
            "after_source": "LBC (Theorem 5.7)",
        },
    ]


def parallel_cholesky_lower_bound_per_node(n: int, p: int, s: int) -> float:
    """Per-node volume of the 2.5D Cholesky algorithms quoted in §2.2:
    ``N^3 / (P sqrt(S))`` (COnfCHOX leading term)."""
    if p < 1:
        raise ConfigurationError(f"P must be >= 1, got {p}")
    _check(n, s)
    return n**3 / (p * math.sqrt(float(s)))


def parallel_syrk_lower_bound_per_node(n: int, m: int, p: int, s: int) -> float:
    """Per-node SYRK receive floor: ``N^2 M / (sqrt(2) P sqrt(S)) - S``.

    The §2.2 equivalence applied to the paper's symmetric bound, in the
    style of Irony et al.'s memory-communication tradeoff: some node
    performs at least ``|S|/P = N^2 M / (2P)`` of the multiplications, its
    operational intensity is capped at ``sqrt(S/2)`` (Lemma 3.1 with the
    symmetric improvement), and up to ``S`` operands may already be
    resident — so that node receives at least
    ``N^2 M / (2P) / sqrt(S/2) - S`` elements from the rest of the machine.
    This is the yardstick benchmark E14 charges the sharded executor's
    maximum per-node receive volume against.
    """
    if p < 1:
        raise ConfigurationError(f"P must be >= 1, got {p}")
    _check(n, s)
    if m < 1:
        raise ConfigurationError(f"M must be >= 1, got {m}")
    return n * n * m / (SQRT2 * p * math.sqrt(float(s))) - s


def parallel_gemm_lower_bound_per_node(m: int, n: int, r: int, p: int, s: int) -> float:
    """Irony et al.'s memory-communication tradeoff (§2.2): at least one node
    moves ``M N R / (2 sqrt(2) P sqrt(S)) - S`` elements."""
    if p < 1:
        raise ConfigurationError(f"P must be >= 1, got {p}")
    if s < 1:
        raise ConfigurationError(f"S must be >= 1, got {s}")
    return m * n * r / (2.0 * SQRT2 * p * math.sqrt(float(s))) - s
