"""Triangle blocks (Definition 3.5) and the σ/T(m) machinery (Lemma 3.6).

A *triangle block* over a set of row indices ``R`` is::

    TB(R) = {(r, r') : r, r' in R, r > r'}

with ``|TB(R)| = |R|(|R|-1)/2``; ``|R|`` is its *side length*.  Triangle
blocks are the paper's central device: updating ``TB(R)`` at iteration
``k`` needs only the ``|R|`` values ``A[r, k], r in R`` — the symmetric
footprint τ — whereas a square tile of the same area needs ~``sqrt(2)``
times more streamed data.  That factor is the whole paper.

``σ(m)`` (Lemma 3.6) is the smallest side length of a triangle block with at
least ``m`` elements::

    σ(m) = ceil( sqrt(1/4 + 2m) + 1/2 ),   σ(0) = 0

and ``T(m)`` is a canonical ``m``-element subset of ``TB([0, σ(m)))`` — the
cheapest way to place ``m`` computations in one iteration.
"""

from __future__ import annotations

import math
from typing import Iterable

Pair = tuple[int, int]


def triangle_block(r: Iterable[int]) -> set[Pair]:
    """``TB(R)``: all strictly subdiagonal pairs of ``R`` (Definition 3.5).

    >>> sorted(triangle_block([0, 2, 5]))
    [(2, 0), (5, 0), (5, 2)]
    """
    rs = sorted(set(r))
    if len(rs) != len(list(r)):
        raise ValueError("triangle block row set R must be duplicate-free")
    return {(a, b) for i, a in enumerate(rs) for b in rs[:i]}


def triangle_block_size(side: int) -> int:
    """``|TB(R)|`` for ``|R| = side``: ``side (side - 1) / 2``.

    >>> triangle_block_size(5)
    10
    """
    if side < 0:
        raise ValueError(f"side length must be >= 0, got {side}")
    return side * (side - 1) // 2


def side_length(block: Iterable[Pair]) -> int:
    """Side length of a set of pairs: ``|tau(block)|`` (Definition 3.3)."""
    return symmetric_footprint_size(block)


def symmetric_footprint_size(u: Iterable[Pair]) -> int:
    """``|tau(U)|``: distinct indices appearing as either pair coordinate."""
    seen: set[int] = set()
    for i, j in u:
        seen.add(i)
        seen.add(j)
    return len(seen)


def sigma(m: int) -> int:
    """σ(m): smallest side length of a triangle block with >= m elements.

    Lemma 3.6: ``σ(m) = ceil( sqrt(1/4 + 2m) + 1/2 )`` for m >= 1, σ(0)=0.

    >>> [sigma(m) for m in range(7)]
    [0, 2, 3, 3, 4, 4, 4]
    >>> sigma(10)
    5
    """
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if m == 0:
        return 0
    s = math.ceil(math.sqrt(0.25 + 2 * m) + 0.5)
    # Guard against float edge cases: σ(m) is the least s with m <= s(s-1)/2.
    while (s - 1) * (s - 2) // 2 >= m:
        s -= 1
    while s * (s - 1) // 2 < m:
        s += 1
    return s


def canonical_triangle(m: int) -> set[Pair]:
    """``T(m)``: a canonical ``m``-element subset of ``TB([0, σ(m)))``.

    We take the first ``m`` subdiagonal pairs in row-major order, which
    guarantees ``|T(m)| = m`` and ``|tau(T(m))| = σ(m)`` (every row index of
    the σ(m)-triangle appears among the first pairs because the last row
    must be touched to reach ``m`` elements).

    >>> sorted(canonical_triangle(4))
    [(1, 0), (2, 0), (2, 1), (3, 0)]
    """
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if m == 0:
        return set()
    s = sigma(m)
    out: set[Pair] = set()
    # Row-major over TB([0, s)): rows 1..s-1, columns 0..row-1.
    for i in range(1, s):
        for j in range(i):
            out.add((i, j))
            if len(out) == m:
                return out
    raise AssertionError("unreachable: sigma(m) triangle holds >= m pairs")


def max_triangle_elements_for_footprint(f: int) -> int:
    """Largest ``|U|`` over pair sets with ``|tau(U)| <= f`` and ``i > j``.

    The inverse view of σ: with footprint budget ``f`` one can perform at
    most ``f(f-1)/2`` subdiagonal updates in a single iteration (remark
    after Definition 3.3).  Used in bound cross-checks.
    """
    if f < 0:
        raise ValueError(f"footprint must be >= 0, got {f}")
    return f * (f - 1) // 2


def sigma_real(m: float) -> float:
    """The continuous relaxation of σ: the real ``s`` with ``s(s-1)/2 = m``.

    ``sigma_real(m) = 1/2 + sqrt(1/4 + 2m)`` — concave in ``m``, with
    ``sigma(m) = ceil(sigma_real(m))`` for integer ``m >= 1``.  The proof of
    Lemma 4.3 uses concavity of σ, which holds for this relaxation but is
    (very slightly) violated by the integer ceiling — see
    :func:`repro.core.balanced.rebalancing_slack` and the E1 write-up.
    """
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if m == 0:
        return 0.0
    return 0.5 + math.sqrt(0.25 + 2.0 * m)
