"""Planning the TBS decomposition of the result matrix (Section 5.1.1).

Given a (sub)matrix of ``n`` rows and a triangle side ``k``, the plan
chooses the zone size ``c`` (largest integer coprime with the primorial
``q`` below ``n/k``; Lemma 5.5), and fixes the geometry:

* ``k`` *zone-row groups* of ``c`` consecutive rows each (local indices
  ``[u*c, (u+1)*c)``), covering the first ``c*k`` rows;
* ``c^2`` *triangle blocks*, block ``(i,j)`` taking row ``u*c + f_{i,j}(u)``
  from group ``u`` (cyclic indexing family) — these tile all inter-group
  subdiagonal pairs, i.e. the ``k(k-1)/2`` square zones of Figure 1;
* the *leftover strip* of ``l = n - c*k`` trailing rows (handled by
  OOC_SYRK, Figure 2 right);
* the ``k`` *diagonal zones* (intra-group pairs), handled recursively.

``plan_partition`` returns ``None`` when ``c < k-1`` (the Lemma 5.5
precondition fails), in which case Algorithm 4 falls back to OOC_SYRK.
The class also carries exhaustive self-checks used by the tests and by
experiment E5 (disjointness + exact cover).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..utils.primes import largest_coprime_below, primorial_up_to
from .indexing import CyclicIndexingFamily


def choose_c(n: int, k: int) -> int:
    """Largest ``c <= n/k`` coprime with ``q = primorial(k-2)``; 0 if none."""
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    bound = n // k
    if bound < 1:
        return 0
    return largest_coprime_below(bound, primorial_up_to(k - 2))


@dataclass
class TBSPartition:
    """The concrete decomposition TBS uses at one recursion level."""

    n: int
    k: int
    c: int
    family: CyclicIndexingFamily = field(repr=False)

    @property
    def covered(self) -> int:
        """Rows covered by the zone groups: ``c * k``."""
        return self.c * self.k

    @property
    def leftover(self) -> int:
        """Strip height ``l = n - c*k``."""
        return self.n - self.covered

    def group(self, u: int) -> np.ndarray:
        """Local row indices of zone-row group ``u``."""
        if not 0 <= u < self.k:
            raise ConfigurationError(f"group index {u} out of range [0, {self.k})")
        return np.arange(u * self.c, (u + 1) * self.c, dtype=np.int64)

    def groups(self) -> list[np.ndarray]:
        return [self.group(u) for u in range(self.k)]

    def strip(self) -> np.ndarray:
        """Local row indices of the leftover strip."""
        return np.arange(self.covered, self.n, dtype=np.int64)

    def block_rows(self, i: int, j: int) -> np.ndarray:
        """Local row indices of triangle block ``B_{i,j}`` (Equation 1)."""
        return self.family.rows(i, j)

    def iter_blocks(self):
        """Yield ``((i, j), rows)`` for all ``c^2`` blocks."""
        for i in range(self.c):
            for j in range(self.c):
                yield (i, j), self.block_rows(i, j)

    # ------------------------------------------------------------------ #
    # exhaustive self-checks (test-sized instances)
    # ------------------------------------------------------------------ #
    def validate_blocks_disjoint(self) -> bool:
        """All ``c^2`` triangle blocks are pairwise element-disjoint."""
        seen: set[tuple[int, int]] = set()
        for _, rows in self.iter_blocks():
            rs = sorted(int(r) for r in rows)
            for a_idx, r in enumerate(rs):
                for rp in rs[:a_idx]:
                    if (r, rp) in seen:
                        return False
                    seen.add((r, rp))
        return True

    def validate_exact_cover(self) -> bool:
        """Blocks cover *exactly* the inter-group subdiagonal pairs.

        Together with the recursion (intra-group pairs) and the strip, this
        is the proof obligation that TBS computes every element of C once.
        """
        covered: set[tuple[int, int]] = set()
        for _, rows in self.iter_blocks():
            rs = sorted(int(r) for r in rows)
            for a_idx, r in enumerate(rs):
                for rp in rs[:a_idx]:
                    if (r, rp) in covered:
                        return False
                    covered.add((r, rp))
        expected: set[tuple[int, int]] = set()
        for u in range(self.k):
            for v in range(u):
                for r in self.group(u):
                    for rp in self.group(v):
                        expected.add((int(r), int(rp)))
        return covered == expected


def plan_partition(n: int, k: int) -> TBSPartition | None:
    """Build the TBS plan for ``n`` rows with triangle side ``k``.

    Returns ``None`` when the triangle-block approach is not applicable
    (``c < k - 1``; Algorithm 4 then calls OOC_SYRK on everything).
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    c = choose_c(n, k)
    if c < k - 1 or c < 1:
        return None
    family = CyclicIndexingFamily(c, k)
    return TBSPartition(n=n, k=k, c=c, family=family)


def recursion_profile(n: int, k: int) -> list[dict[str, int | str]]:
    """The TBS recursion tree as flat records (depth, n, c, l, mode).

    Mirrors Algorithm 4's control flow without running it; used by E5 and
    the model predictor.  Each level's ``k`` recursive calls are identical
    (same ``c``), so one record per depth suffices.
    """
    out: list[dict[str, int | str]] = []
    depth = 0
    width = 1  # number of identical subproblems at this depth
    while True:
        part = plan_partition(n, k)
        if part is None:
            out.append({"depth": depth, "n": n, "c": 0, "l": n, "mode": "ooc_syrk", "count": width})
            return out
        out.append(
            {
                "depth": depth,
                "n": n,
                "c": part.c,
                "l": part.leftover,
                "mode": "triangle_blocks",
                "count": width,
            }
        )
        n = part.c
        width *= k
        depth += 1
