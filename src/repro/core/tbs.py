"""TBS — Triangle Block SYRK (Algorithm 4), the paper's optimal SYRK schedule.

The memory of size ``S`` fits a triangle block of side ``k`` from the result
(``k(k-1)/2`` elements) plus one length-``k`` column segment of ``A``:
``S >= k(k+1)/2``.  Each of the ``c^2`` triangle blocks is loaded once, all
``M`` columns of ``A`` are streamed past it (``k`` elements per column —
the symmetric footprint, *not* ``2k``), and the block is written back:

* A-traffic per block: ``k * M``  ->  total ``c^2 k M <= N^2 M / k``;
* summed over the ``O(log N)`` recursion levels: ``N^2 M / (k - 1)``;
* with ``k - 1 ~ sqrt(2 S)``:  ``Q_TBS = N^2 M / sqrt(2 S) + N^2/2 +
  O(N M log N)`` (Theorem 5.6) — a factor ``sqrt(2)`` below OOC_SYRK and
  matching the Corollary 4.7 lower bound.

The leftover strip (``l = N - c k`` rows) and the recursion base case
(``c < k - 1``) fall back to OOC_SYRK, exactly as in Algorithm 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.ooc_syrk import ooc_syrk, ooc_syrk_strip
from ..config import triangle_side_for_memory
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.tracker import IOStats
from ..sched.ops import TriangleUpdate
from ..utils.intervals import as_index_array
from .partition import plan_partition, recursion_profile


@dataclass
class TBSReport:
    """Structural record of one TBS run (what E5 reports)."""

    n: int
    m: int
    k: int
    levels: list[dict[str, int | str]] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.levels)

    def fallback_rows(self) -> int:
        """Rows ultimately handled by OOC_SYRK across all levels (strips + base)."""
        total = 0
        for lv in self.levels:
            total += int(lv["l"]) * int(lv["count"])
        return total


def tbs_syrk(
    m: TwoLevelMachine,
    a: str,
    c: str,
    rows,
    cols,
    sign: float = 1.0,
    k: int | None = None,
) -> IOStats:
    """Run TBS: ``C[rows, rows] += sign * A[rows, cols] A[rows, cols]ᵀ``
    (lower triangle incl. diagonal).  Returns the I/O stats delta.

    ``rows``/``cols`` are global indices into the named matrices, so LBC
    can aim TBS at the trailing submatrix with the just-solved panel as
    input.  ``k`` defaults to the largest triangle side the memory fits
    (``k(k+1)/2 <= S``); passing a smaller ``k`` under-uses memory (useful
    for experiments).
    """
    rows = as_index_array(rows)
    cols = as_index_array(cols)
    if k is None:
        k = triangle_side_for_memory(m.capacity)
    if k < 2:
        raise ConfigurationError(f"memory S={m.capacity} cannot fit any triangle block (k={k})")
    if k * (k + 1) // 2 > m.capacity:
        raise ConfigurationError(f"k={k} needs S >= {k * (k + 1) // 2}, got {m.capacity}")
    before = m.stats.snapshot()
    _tbs_recurse(m, a, c, rows, cols, sign, k)
    return m.stats.diff(before)


def _tbs_recurse(
    m: TwoLevelMachine,
    a: str,
    c: str,
    rows: np.ndarray,
    cols: np.ndarray,
    sign: float,
    k: int,
) -> None:
    n = rows.size
    part = plan_partition(n, k)
    if part is None:
        # c too small: Algorithm 4's fallback to square-tile OOC_SYRK.
        ooc_syrk(m, a, c, rows, cols, sign=sign)
        return

    ck = part.covered
    # (1) leftover strip: last l rows, via OOC_SYRK (Figure 2, right).
    if part.leftover:
        ooc_syrk_strip(m, a, c, rows[ck:], rows[:ck], cols, sign=sign)

    # (2) recursive calls on the k diagonal (triangular) zones.
    for u in range(k):
        sub = rows[part.group(u)]
        _tbs_recurse(m, a, c, sub, cols, sign, k)

    # (3) the c^2 triangle blocks over the square zones.
    for (_ij, local_rows) in part.iter_blocks():
        r_global = rows[local_rows]
        block = m.triangle_block(c, r_global)
        m.load(block)
        for kk in cols:
            seg = m.column_segment(a, r_global, int(kk))
            m.load(seg)
            m.compute(TriangleUpdate(m, c, a, r_global, int(kk), sign=sign, include_diagonal=False))
            m.evict(seg)
        m.evict(block, writeback=True)


def tbs_report(n: int, mcols: int, s: int, k: int | None = None) -> TBSReport:
    """Structural report of what :func:`tbs_syrk` would do (no machine run)."""
    if k is None:
        k = triangle_side_for_memory(s)
    return TBSReport(n=n, m=mcols, k=k, levels=recursion_profile(n, k))
