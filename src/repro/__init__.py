"""repro — reproduction of "I/O-Optimal Algorithms for Symmetric Linear
Algebra Kernels" (Beaumont, Eyraud-Dubois, Vérité, Langou; SPAA 2022).

The package provides:

* :mod:`repro.machine` — an instrumented two-level memory machine (fast
  memory of ``S`` elements, explicit load/evict, exact I/O accounting,
  NaN-poisoned strict mode);
* :mod:`repro.core` — the paper's contribution: triangle blocks, indexing
  families, the TBS and LBC schedules, lower bounds, and the Section 4
  proof machinery (balanced solutions, P''-optimum);
* :mod:`repro.baselines` — Bereux's OOC_SYRK / OOC_TRSM / OOC_CHOL, blocked
  GEMM and LU comparators, and naive LRU loop nests;
* :mod:`repro.kernels` — in-memory NumPy reference oracles and the
  operation-set combinatorics (``D(B)``, Prop. 3.4);
* :mod:`repro.analysis` — exact I/O predictors, operational-intensity
  rooflines, and sweep harnesses that regenerate every experiment;
* :mod:`repro.graph` — the dependency-graph scheduling engine: task-DAG
  extraction from recorded schedules, worklist re-scheduling under
  pluggable heuristics, Belady/MIN replay, and load/evict regeneration;
* :mod:`repro.trace` — the compiled trace IR: element access streams as
  dense numpy arrays, array-based LRU/Belady replays, and the compact
  on-disk format for traces and schedules;
* :mod:`repro.viz` — ASCII renderers for the paper's Figures 1–3.

Quickstart::

    import numpy as np
    from repro import TwoLevelMachine, tbs_syrk, syrk_lower_bound

    n, mcols, s = 60, 8, 15
    a = np.random.default_rng(0).standard_normal((n, mcols))
    m = TwoLevelMachine(s)
    m.add_matrix("A", a)
    m.add_matrix("C", np.zeros((n, n)))
    stats = tbs_syrk(m, "A", "C", range(n), range(mcols))
    print(stats.q, ">=", syrk_lower_bound(n, mcols, s))
    np.testing.assert_allclose(np.tril(m.result("C")), np.tril(a @ a.T))
"""

from .config import (
    DEFAULT_SEED,
    MachineConfig,
    lbc_block_size,
    square_tile_side_for_memory,
    tiled_tbs_shape_for_memory,
    triangle_side_for_memory,
)
from .errors import (
    CapacityError,
    ConfigurationError,
    MachineError,
    RedundantLoadError,
    ReproError,
    ResidencyError,
    ScheduleError,
    VerificationError,
    WritebackError,
)
from .machine import (
    ExplicitPebbleMachine,
    FastMemory,
    IOStats,
    LRUPebbleMachine,
    Region,
    SlowMemory,
    TwoLevelMachine,
)
from .core import (
    CyclicIndexingFamily,
    TBSPartition,
    cholesky_lower_bound,
    choose_c,
    lbc_cholesky,
    max_operational_intensity,
    plan_partition,
    syrk_lower_bound,
    tbs_syrk,
    tbs_tiled_syrk,
)
from .baselines import (
    naive_cholesky_lru,
    naive_syrk_lru,
    ooc_chol,
    ooc_gemm,
    ooc_lu,
    ooc_syrk,
    ooc_trsm,
)
from .kernels import (
    cholesky_reference,
    gemm_reference,
    lu_nopivot_reference,
    syrk_reference,
    trsm_right_lower_transpose,
)
from .graph import (
    DependencyGraph,
    belady_replay,
    dependency_graph,
    list_schedule,
    reschedule,
    rewrite_schedule,
)
from .trace import (
    CompiledTrace,
    compile_trace,
    load_schedule,
    load_trace,
    save_schedule,
    save_trace,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SEED",
    "MachineConfig",
    "lbc_block_size",
    "square_tile_side_for_memory",
    "tiled_tbs_shape_for_memory",
    "triangle_side_for_memory",
    "CapacityError",
    "ConfigurationError",
    "MachineError",
    "RedundantLoadError",
    "ReproError",
    "ResidencyError",
    "ScheduleError",
    "VerificationError",
    "WritebackError",
    "ExplicitPebbleMachine",
    "FastMemory",
    "IOStats",
    "LRUPebbleMachine",
    "Region",
    "SlowMemory",
    "TwoLevelMachine",
    "CyclicIndexingFamily",
    "TBSPartition",
    "cholesky_lower_bound",
    "choose_c",
    "lbc_cholesky",
    "max_operational_intensity",
    "plan_partition",
    "syrk_lower_bound",
    "tbs_syrk",
    "tbs_tiled_syrk",
    "naive_cholesky_lru",
    "naive_syrk_lru",
    "ooc_chol",
    "ooc_gemm",
    "ooc_lu",
    "ooc_syrk",
    "ooc_trsm",
    "cholesky_reference",
    "gemm_reference",
    "lu_nopivot_reference",
    "syrk_reference",
    "trsm_right_lower_transpose",
    "DependencyGraph",
    "belady_replay",
    "dependency_graph",
    "list_schedule",
    "reschedule",
    "rewrite_schedule",
    "CompiledTrace",
    "compile_trace",
    "load_schedule",
    "load_trace",
    "save_schedule",
    "save_trace",
    "__version__",
]
