"""Baseline out-of-core schedules: Bereux's one-tile narrow-block algorithms
(OOC_SYRK / OOC_TRSM / OOC_CHOL), a blocked GEMM and LU for the
operational-intensity comparison, and naive LRU loop nests for motivation."""

from .ooc_syrk import ooc_syrk, ooc_syrk_rect, ooc_syrk_strip
from .ooc_trsm import ooc_trsm
from .ooc_chol import ooc_chol
from .gemm import ooc_gemm
from .lu import ooc_lu
from .naive import naive_syrk_lru, naive_cholesky_lru

__all__ = [
    "ooc_syrk",
    "ooc_syrk_rect",
    "ooc_syrk_strip",
    "ooc_trsm",
    "ooc_chol",
    "ooc_gemm",
    "ooc_lu",
    "naive_syrk_lru",
    "naive_cholesky_lru",
]
