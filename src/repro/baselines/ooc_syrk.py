"""OOC_SYRK: Bereux's square-tile out-of-core SYRK (the pre-paper baseline).

One-tile, narrow-block variant (denoted OCS in the paper): hold one
``s x s`` tile of the result ``C`` resident and stream columns of ``A`` past
it, two length-``s`` segments per column, so the memory requirement is
``s^2 + 2s <= S``.  Diagonal tiles hold only their lower triangle
(including the diagonal) and need a *single* segment per column.

I/O volume (paper, Section 5): ``Q_OCS(N, M) = N^2 M / sqrt(S) + O(N M)``
for the ``A`` traffic, plus one pass over ``C``'s lower triangle
(``N(N+1)/2`` loads + as many writebacks).  The square tile is optimal
*without* exploiting the symmetric reuse of ``A`` — exactly the factor
``sqrt(2)`` TBS recovers.

All entry points operate on global index sets so TBS can delegate its
leftover strip and recursion base cases here (Algorithm 4's fallback).
"""

from __future__ import annotations

import numpy as np

from ..config import square_tile_side_for_memory
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.tracker import IOStats
from ..sched.ops import OuterColsUpdate, TriangleUpdate
from ..utils.intervals import as_index_array, split_indices


def _check_disjoint(a: np.ndarray, b: np.ndarray) -> None:
    if np.intersect1d(a, b).size:
        raise ConfigurationError("row sets must be disjoint")


def ooc_syrk(
    m: TwoLevelMachine,
    a: str,
    c: str,
    rows,
    cols,
    sign: float = 1.0,
    tile: int | None = None,
) -> IOStats:
    """Full lower triangle (incl. diagonal): ``C[rows, rows] += sign * A Aᵀ``.

    ``rows`` are global row indices into both ``A`` and ``C``; ``cols`` are
    the ``A`` columns to accumulate over.  Returns the I/O stats delta of
    this call.
    """
    rows = as_index_array(rows)
    cols = as_index_array(cols)
    before = m.stats.snapshot()
    s = tile if tile is not None else square_tile_side_for_memory(m.capacity)
    if s * s + 2 * s > m.capacity:
        raise ConfigurationError(f"tile {s} too large for S={m.capacity}")
    blocks = split_indices(rows, s)
    for bi, ri in enumerate(blocks):
        # Diagonal tile: lower triangle only, single streamed segment.
        with m.hold(m.lower_tile(c, ri), writeback=True):
            for k in cols:
                seg = m.column_segment(a, ri, int(k))
                m.load(seg)
                m.compute(TriangleUpdate(m, c, a, ri, int(k), sign=sign, include_diagonal=True))
                m.evict(seg)
        # Tiles strictly below the diagonal in this block column.
        for rj in blocks[:bi]:
            _rect_tile(m, a, c, ri, rj, cols, sign)
    return m.stats.diff(before)


def ooc_syrk_rect(
    m: TwoLevelMachine,
    a: str,
    c: str,
    rows_i,
    rows_j,
    cols,
    sign: float = 1.0,
    tile: int | None = None,
) -> IOStats:
    """Rectangular SYRK block: ``C[rows_i, rows_j] += sign * A[rows_i,:] A[rows_j,:]ᵀ``.

    Requires disjoint row sets (every pair is then a valid subdiagonal
    element when ``rows_j`` precede ``rows_i``).  Used for the part of
    TBS's leftover strip that lies below previously computed rows.
    """
    rows_i = as_index_array(rows_i)
    rows_j = as_index_array(rows_j)
    cols = as_index_array(cols)
    _check_disjoint(rows_i, rows_j)
    before = m.stats.snapshot()
    s = tile if tile is not None else square_tile_side_for_memory(m.capacity)
    for ri in split_indices(rows_i, s):
        for rj in split_indices(rows_j, s):
            _rect_tile(m, a, c, ri, rj, cols, sign)
    return m.stats.diff(before)


def _rect_tile(m: TwoLevelMachine, a: str, c: str, ri: np.ndarray, rj: np.ndarray, cols: np.ndarray, sign: float) -> None:
    """Hold one rectangular tile of C and stream column pairs of A past it."""
    with m.hold(m.tile(c, ri, rj), writeback=True):
        for k in cols:
            seg_i = m.column_segment(a, ri, int(k))
            seg_j = m.column_segment(a, rj, int(k))
            m.load(seg_i)
            m.load(seg_j)
            m.compute(OuterColsUpdate(m, c, a, a, ri, rj, int(k), int(k), sign=sign))
            m.evict(seg_i)
            m.evict(seg_j)


def ooc_syrk_strip(
    m: TwoLevelMachine,
    a: str,
    c: str,
    strip_rows,
    prior_rows,
    cols,
    sign: float = 1.0,
    tile: int | None = None,
) -> IOStats:
    """The trapezoid ``{C[i, j] : i in strip, j in prior U strip, j <= i}``.

    This is the region Algorithm 4 assigns to OOC_SYRK for the last
    ``l = N - c k`` rows: a full rectangle against all earlier rows plus the
    lower triangle within the strip.  ``prior_rows`` must all precede
    ``strip_rows``.
    """
    strip_rows = as_index_array(strip_rows)
    prior_rows = as_index_array(prior_rows)
    before = m.stats.snapshot()
    if strip_rows.size == 0:
        return m.stats.diff(before)
    if prior_rows.size and prior_rows.max() >= strip_rows.min():
        raise ConfigurationError("prior_rows must all precede strip_rows")
    if prior_rows.size:
        ooc_syrk_rect(m, a, c, strip_rows, prior_rows, cols, sign=sign, tile=tile)
    ooc_syrk(m, a, c, strip_rows, cols, sign=sign, tile=tile)
    return m.stats.diff(before)
