"""OOC_TRSM: Bereux's one-tile, narrow-block out-of-core triangular solve.

Solves ``X Lᵀ = B`` in place (``B`` becomes ``X``), where ``L`` is an
``n x n`` lower triangular matrix and ``B`` has ``M`` rows — the panel
operation of LBC (``A[I1, I0] <- A[I1, I0] · L⁻ᵀ``).

Schedule: for each ``s x s`` tile of ``X`` (row panel ``I``, block column
``J``), hold the tile resident and

1. stream, for every already-solved global column ``t`` left of ``J``, the
   two length-``s`` segments ``X[I, t]`` (final values, reloaded from slow
   memory) and ``L[J, t]``, applying the rank-1 update
   ``X[I, J] -= X[I, t] (x) L[J, t]``;
2. solve against the diagonal block by streaming *rows* of ``L[J, J]`` one
   at a time (``s(s+1)/2`` extra loads per tile — lower order), never
   holding a second tile;
3. write the tile back.

Memory: ``s^2 + 2s <= S``.  I/O volume: ``Q_OCT(n, M) = n^2 M / sqrt(S) +
O(n M)``, matching the paper's quoted complexity for OCT.
"""

from __future__ import annotations

from ..config import square_tile_side_for_memory
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.tracker import IOStats
from ..sched.ops import OuterColsUpdate, TrsmSolveStep
from ..utils.intervals import as_index_array, split_indices


def ooc_trsm(
    m: TwoLevelMachine,
    l: str,
    x: str,
    tri_idx,
    x_rows,
    tile: int | None = None,
) -> IOStats:
    """In-place solve ``X[x_rows, tri_idx] · L[tri_idx, tri_idx]ᵀ = X``.

    ``l`` and ``x`` may name the same matrix (as in LBC, where both are
    sub-blocks of ``A``); ``tri_idx`` indexes the triangular dimension
    (columns of ``X``, rows *and* columns of ``L``), ``x_rows`` the solved
    rows.  Returns the I/O stats delta of this call.
    """
    tri_idx = as_index_array(tri_idx)
    x_rows = as_index_array(x_rows)
    before = m.stats.snapshot()
    s = tile if tile is not None else square_tile_side_for_memory(m.capacity)
    if s * s + 2 * s > m.capacity:
        raise ConfigurationError(f"tile {s} too large for S={m.capacity}")
    col_blocks = split_indices(tri_idx, s)
    for xi in split_indices(x_rows, s):
        for jb, jcols in enumerate(col_blocks):
            with m.hold(m.tile(x, xi, jcols), writeback=True):
                # (1) rank-1 updates with all already-solved columns.
                for prior in col_blocks[:jb]:
                    for t in prior:
                        seg_x = m.column_segment(x, xi, int(t))
                        seg_l = m.column_segment(l, jcols, int(t))
                        m.load(seg_x)
                        m.load(seg_l)
                        m.compute(
                            OuterColsUpdate(m, x, x, l, xi, jcols, int(t), int(t), sign=-1.0)
                        )
                        m.evict(seg_x)
                        m.evict(seg_l)
                # (2) solve against the diagonal block, one L-row at a time.
                for t_local in range(jcols.size):
                    lrow = m.row_segment(l, int(jcols[t_local]), jcols[: t_local + 1])
                    m.load(lrow)
                    m.compute(TrsmSolveStep(m, x, l, xi, jcols, t_local))
                    m.evict(lrow)
    return m.stats.diff(before)
