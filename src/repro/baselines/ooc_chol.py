"""OOC_CHOL: Bereux's one-tile, left-looking out-of-core Cholesky.

The pre-paper Cholesky baseline (denoted OCC): square ``s x s`` tiles,
processed left-looking by block column, each tile loaded exactly once and
written back exactly once, with all its updates streamed past it as narrow
column pairs.

For block column ``jb`` over a row set ``rows``:

* the **diagonal tile** holds its lower triangle (incl. diagonal); for each
  already-final global column ``t`` to its left, stream the single segment
  ``L[Ij, t]`` and apply the symmetric rank-1 downdate; then factor the
  resident tile in place (zero I/O) and write it back;
* each **sub-diagonal tile** ``(ib, jb)`` holds its full square; for each
  prior column ``t``, stream ``L[Ii, t]`` and ``L[Ij, t]`` and downdate;
  then solve against the (already written back) diagonal factor by
  streaming its rows one at a time, and write back.

Memory: ``s^2 + 2s <= S``.  I/O volume: ``Q_OCC(N) = N^3 / (3 sqrt(S)) +
O(N^2)`` — the constant ``1/3`` the paper's LBC improves to
``1/(3 sqrt 2)``.  The leading term comes entirely from the streamed
updates; tile loads, writebacks and the row-streamed solves are ``O(N^2)``.
"""

from __future__ import annotations

from ..config import square_tile_side_for_memory
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.tracker import IOStats
from ..sched.ops import CholFactorResident, OuterColsUpdate, TriangleUpdate, TrsmSolveStep
from ..utils.intervals import as_index_array, split_indices


def ooc_chol(
    m: TwoLevelMachine,
    a: str,
    rows,
    tile: int | None = None,
) -> IOStats:
    """In-place Cholesky of ``A[rows, rows]`` (lower triangle).

    ``rows`` are global indices into the backing matrix ``a``, so LBC can
    factor diagonal blocks of a larger matrix in place.  Returns the I/O
    stats delta of this call.
    """
    rows = as_index_array(rows)
    before = m.stats.snapshot()
    s = tile if tile is not None else square_tile_side_for_memory(m.capacity)
    if s * s + 2 * s > m.capacity:
        raise ConfigurationError(f"tile {s} too large for S={m.capacity}")
    blocks = split_indices(rows, s)
    for jb, ij in enumerate(blocks):
        prior_cols = rows[: int(jb) * s] if jb else rows[:0]
        # --- diagonal tile: downdate, factor resident, write back ---------
        with m.hold(m.lower_tile(a, ij), writeback=True):
            for t in prior_cols:
                seg = m.column_segment(a, ij, int(t))
                m.load(seg)
                m.compute(TriangleUpdate(m, a, a, ij, int(t), sign=-1.0, include_diagonal=True))
                m.evict(seg)
            m.compute(CholFactorResident(m, a, ij))
        # --- sub-diagonal tiles: downdate, solve vs diagonal, write back --
        for ii in blocks[jb + 1 :]:
            with m.hold(m.tile(a, ii, ij), writeback=True):
                for t in prior_cols:
                    seg_i = m.column_segment(a, ii, int(t))
                    seg_j = m.column_segment(a, ij, int(t))
                    m.load(seg_i)
                    m.load(seg_j)
                    m.compute(OuterColsUpdate(m, a, a, a, ii, ij, int(t), int(t), sign=-1.0))
                    m.evict(seg_i)
                    m.evict(seg_j)
                for t_local in range(ij.size):
                    lrow = m.row_segment(a, int(ij[t_local]), ij[: t_local + 1])
                    m.load(lrow)
                    m.compute(TrsmSolveStep(m, a, a, ii, ij, t_local))
                    m.evict(lrow)
    return m.stats.diff(before)
