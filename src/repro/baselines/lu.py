"""Out-of-core left-looking LU without pivoting: the factorization comparator.

Reproduces the non-symmetric factorization constant the paper cites from
Kwasniewski et al.: ``Q_LU(N) = 2 N^3 / (3 sqrt(S)) + O(N^2)`` — exactly
twice the Cholesky baseline OCC, and ``2 sqrt(2)`` times the paper's LBC.
(No pivoting: intended for strictly diagonally dominant inputs; this is an
I/O study, not a numerics study, and pivoting would not change the volume.)

Schedule: square ``s x s`` tiles processed left-looking by block column.
Tile ``(ib, jb)`` is loaded once, downdated by streamed column/row pairs
``L[Ii, t]`` / ``U[t, Ij]`` for all ``t`` left of ``min(ib, jb)``'s block,
then finalized:

* diagonal tile: resident in-place LU (zero I/O);
* sub-diagonal tile: solve ``X · U[Ij, Ij] = tile`` streaming *columns* of
  the already-factored diagonal ``U``;
* super-diagonal tile: solve ``L[Ii, Ii] · X = tile`` streaming *rows* of
  the unit-lower diagonal factor.

Memory: ``s^2 + 2s <= S``.
"""

from __future__ import annotations

from ..config import square_tile_side_for_memory
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.tracker import IOStats
from ..sched.ops import (
    GemmOuterUpdate,
    LuFactorResident,
    UnitLowerSolveStep,
    UpperSolveStep,
)
from ..utils.intervals import as_index_array, split_indices


def ooc_lu(
    m: TwoLevelMachine,
    a: str,
    rows,
    tile: int | None = None,
) -> IOStats:
    """In-place LU (no pivoting) of ``A[rows, rows]``; returns I/O delta.

    Afterwards the strictly-lower part of ``A[rows, rows]`` holds ``L``
    (unit diagonal implicit) and the upper part holds ``U``.
    """
    rows = as_index_array(rows)
    before = m.stats.snapshot()
    s = tile if tile is not None else square_tile_side_for_memory(m.capacity)
    if s * s + 2 * s > m.capacity:
        raise ConfigurationError(f"tile {s} too large for S={m.capacity}")
    blocks = split_indices(rows, s)
    nb = len(blocks)
    for jb in range(nb):
        ij = blocks[jb]
        for ib in range(nb):
            ii = blocks[ib]
            prior = rows[: min(ib, jb) * s]
            with m.hold(m.tile(a, ii, ij), writeback=True):
                for t in prior:
                    seg_l = m.column_segment(a, ii, int(t))
                    seg_u = m.row_segment(a, int(t), ij)
                    m.load(seg_l)
                    m.load(seg_u)
                    m.compute(GemmOuterUpdate(m, a, a, a, ii, ij, int(t), sign=-1.0))
                    m.evict(seg_l)
                    m.evict(seg_u)
                if ib == jb:
                    m.compute(LuFactorResident(m, a, ii))
                elif ib > jb:
                    # X · U[Ij, Ij] = tile: stream columns of the diagonal U.
                    for t_local in range(ij.size):
                        ucol = m.column_segment(a, ij[: t_local + 1], int(ij[t_local]))
                        m.load(ucol)
                        m.compute(UpperSolveStep(m, a, a, ii, ij, t_local))
                        m.evict(ucol)
                else:
                    # L[Ii, Ii] · X = tile: stream rows of the unit-lower L.
                    for t_local in range(ii.size):
                        if t_local:
                            lrow = m.row_segment(a, int(ii[t_local]), ii[:t_local])
                            m.load(lrow)
                        m.compute(UnitLowerSolveStep(m, a, a, ii, ij, t_local))
                        if t_local:
                            m.evict(lrow)
    return m.stats.diff(before)
