"""Naive three-nested-loop schedules under LRU replacement (experiment E9).

These execute Algorithms 1 and 2 *verbatim* — one element operation at a
time, in program order — on the :class:`~repro.machine.pebble.LRUPebbleMachine`.
No blocking, no explicit memory control: the LRU policy decides what stays
resident.  Once the working set of the inner loops exceeds ``S`` the reuse
distance blows past the capacity and I/O degenerates toward one load per
operand per operation — the Hong–Kung motivation for everything else in
this library.

Loop orders are configurable (``"ijk"``, ``"ikj"``, ``"kij"``) because the
naive volumes differ noticeably between them; E9 tabulates this.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..machine.pebble import LRUPebbleMachine
from ..utils.checks import check_matrix, check_square


def naive_syrk_lru(
    a: np.ndarray,
    capacity: int,
    order: str = "ijk",
    c: np.ndarray | None = None,
) -> tuple[LRUPebbleMachine, np.ndarray]:
    """Run Algorithm 1 element-by-element under LRU; returns (machine, C).

    ``order`` permutes the three loops; all orders compute the identical
    result (C's lower triangle incl. diagonal).
    """
    a = check_matrix("A", a)
    n, m = a.shape
    c0 = np.zeros((n, n)) if c is None else check_square("C", c).copy()
    pm = LRUPebbleMachine(capacity)
    pm.add_matrix("A", a)
    pm.add_matrix("C", c0)

    def op(i: int, j: int, k: int) -> None:
        pm.op_muladd(("C", i, j), ("A", i, k), ("A", j, k))

    if order == "ijk":
        for i in range(n):
            for j in range(i + 1):
                for k in range(m):
                    op(i, j, k)
    elif order == "ikj":
        for i in range(n):
            for k in range(m):
                for j in range(i + 1):
                    op(i, j, k)
    elif order == "kij":
        for k in range(m):
            for i in range(n):
                for j in range(i + 1):
                    op(i, j, k)
    else:
        raise ConfigurationError(f"unknown loop order {order!r}")
    pm.flush()
    return pm, pm.result("C")


def naive_cholesky_lru(
    a: np.ndarray,
    capacity: int,
) -> tuple[LRUPebbleMachine, np.ndarray]:
    """Run Algorithm 2 element-by-element under LRU; returns (machine, L).

    The loop order is Algorithm 2's: for each pivot column ``k``, sqrt the
    pivot, scale the column, then apply every update ``(i, j, k)``.
    """
    a = check_square("A", a)
    n = a.shape[0]
    pm = LRUPebbleMachine(capacity)
    pm.add_matrix("A", a)
    for k in range(n):
        pm.op_sqrt(("A", k, k))
        for i in range(k + 1, n):
            pm.op_div(("A", i, k), ("A", k, k))
        for i in range(k + 1, n):
            for j in range(k + 1, i + 1):
                pm.op_muladd(("A", i, j), ("A", i, k), ("A", j, k), sign=-1.0)
    pm.flush()
    return pm, np.tril(pm.result("A"))
