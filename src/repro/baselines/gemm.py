"""Out-of-core blocked GEMM: the non-symmetric comparator for E7/E8.

``C (n x p) += A (n x k) · B (k x p)`` with one resident ``s x s`` tile of
``C`` and streamed column/row pairs, ``s^2 + 2s <= S``.  I/O volume
``2 n p k / s ~ 2 n p k / sqrt(S)`` for the streamed operands, i.e. an
operational intensity of ``sqrt(S)`` multiplies per load — the classic
square-tile optimum the paper contrasts against the symmetric ``sqrt(S/2)``
... in the *other* direction: symmetric kernels reach ``sqrt(S/2)`` *per
streamed element against half the output elements*, netting the
``sqrt(2)`` advantage.  Measured OI of this schedule converges to
``sqrt(S)/2`` per mult against *total* loads and ``sqrt(S)`` against
streamed loads; E7 reports both alongside the ceilings.
"""

from __future__ import annotations

from ..config import square_tile_side_for_memory
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..machine.tracker import IOStats
from ..sched.ops import GemmOuterUpdate
from ..utils.intervals import as_index_array, split_indices


def ooc_gemm(
    m: TwoLevelMachine,
    a: str,
    b: str,
    c: str,
    rows,
    inner,
    cols,
    sign: float = 1.0,
    tile: int | None = None,
) -> IOStats:
    """``C[rows, cols] += sign * A[rows, inner] · B[inner, cols]``.

    ``rows``/``cols`` index the output; ``inner`` the contraction dimension
    (columns of ``A``, rows of ``B``).  Returns the I/O stats delta.
    """
    rows = as_index_array(rows)
    inner = as_index_array(inner)
    cols = as_index_array(cols)
    before = m.stats.snapshot()
    s = tile if tile is not None else square_tile_side_for_memory(m.capacity)
    if s * s + 2 * s > m.capacity:
        raise ConfigurationError(f"tile {s} too large for S={m.capacity}")
    for ri in split_indices(rows, s):
        for cj in split_indices(cols, s):
            with m.hold(m.tile(c, ri, cj), writeback=True):
                for k in inner:
                    seg_a = m.column_segment(a, ri, int(k))
                    seg_b = m.row_segment(b, int(k), cj)
                    m.load(seg_a)
                    m.load(seg_b)
                    m.compute(GemmOuterUpdate(m, c, a, b, ri, cj, int(k), sign=sign))
                    m.evict(seg_a)
                    m.evict(seg_b)
    return m.stats.diff(before)
